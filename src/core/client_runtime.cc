#include "src/core/client_runtime.h"

#include <algorithm>

namespace gist {

ClientRuntime::ClientRuntime(const Module& module, const InstrumentationPlan& plan,
                             uint32_t num_cores, size_t pt_buffer_bytes,
                             uint32_t watchpoint_slots)
    : module_(module),
      plan_(plan),
      tracer_(num_cores, pt_buffer_bytes, /*always_on=*/false),
      watchpoints_(watchpoint_slots) {
  // Statically-known addresses (globals) are armed before the run starts.
  for (Addr addr : plan.static_watch_addrs) {
    watchpoints_.Arm(addr);
  }
}

ClientRuntime::ClientRuntime(const Module& module, const PlanSnapshot& snapshot,
                             uint64_t client_index, uint32_t num_cores, size_t pt_buffer_bytes,
                             uint32_t watchpoint_slots)
    : ClientRuntime(module, snapshot.ForClient(client_index), num_cores, pt_buffer_bytes,
                    watchpoint_slots == kSnapshotSlots ? snapshot.watchpoint_slots()
                                                       : watchpoint_slots) {}

void ClientRuntime::OnContextSwitch(CoreId core, ThreadId prev, ThreadId next,
                                    FunctionId next_function, BlockId next_block,
                                    uint32_t next_index) {
  tracer_.OnContextSwitch(core, prev, next, next_function, next_block, next_index);
}

void ClientRuntime::OnBlockEnter(ThreadId tid, CoreId core, FunctionId function, BlockId block) {
  if (plan_.ShouldStartAt(function, block)) {
    tracer_.Enable(core, tid, function, block);
  }
  tracer_.OnBlockEnter(tid, core, function, block);
}

void ClientRuntime::OnBranch(ThreadId tid, CoreId core, InstrId instr, bool taken) {
  tracer_.OnBranch(tid, core, instr, taken);
}

void ClientRuntime::OnMemAccess(const MemAccessEvent& event) {
  if (plan_.ShouldWatch(event.instr) && !watchpoints_.IsWatched(event.addr)) {
    // Arm on first execution of a tracked access: the runtime now knows the
    // concrete address the statically-planned watchpoint should cover.
    if (!watchpoints_.Arm(event.addr)) {
      if (std::find(unarmed_.begin(), unarmed_.end(), event.instr) == unarmed_.end()) {
        unarmed_.push_back(event.instr);
      }
    }
  }
  watchpoints_.OnMemAccess(event);
  perf_.OnMemAccess(event);
}

void ClientRuntime::OnReturn(ThreadId tid, CoreId core, InstrId instr, FunctionId to_function,
                             BlockId to_block, uint32_t to_index) {
  tracer_.OnReturn(tid, core, instr, to_function, to_block, to_index);
}

void ClientRuntime::OnInstrRetired(ThreadId tid, CoreId core, InstrId instr) {
  perf_.OnInstrRetired(tid, core, instr);
  if (plan_.ShouldStopAfter(instr)) {
    const InstrLocation& loc = module_.location(instr);
    tracer_.Disable(core, loc.function, loc.block, loc.index);
  }
}

void ClientRuntime::OnInstrRetiredBatch(ThreadId tid, CoreId core, const InstrId* instrs,
                                        size_t count) {
  perf_.OnInstrRetiredBatch(tid, core, instrs, count);
  if (plan_.pt_stop_instrs.empty()) {
    return;  // no stop sites anywhere: the whole run needs no per-instr scan
  }
  for (size_t i = 0; i < count; ++i) {
    if (plan_.ShouldStopAfter(instrs[i])) {
      const InstrLocation& loc = module_.location(instrs[i]);
      tracer_.Disable(core, loc.function, loc.block, loc.index);
    }
  }
}

void ClientRuntime::ArmSites(const std::vector<WatchArmSite>& sites,
                             const std::vector<Word>& regs) {
  for (const WatchArmSite& site : sites) {
    if (site.addr_reg >= regs.size()) {
      continue;
    }
    const Addr addr = static_cast<Addr>(regs[site.addr_reg]);
    if (addr == kNullAddr || watchpoints_.IsWatched(addr)) {
      continue;
    }
    if (!watchpoints_.Arm(addr)) {
      if (std::find(unarmed_.begin(), unarmed_.end(), site.target_access) == unarmed_.end()) {
        unarmed_.push_back(site.target_access);
      }
    }
  }
}

void ClientRuntime::BeforeInstr(ThreadId /*tid*/, InstrId instr, const std::vector<Word>& regs) {
  auto it = plan_.arm_before.find(instr);
  if (it != plan_.arm_before.end()) {
    ArmSites(it->second, regs);
  }
}

void ClientRuntime::AfterInstr(ThreadId /*tid*/, InstrId instr, const std::vector<Word>& regs) {
  auto it = plan_.arm_after.find(instr);
  if (it != plan_.arm_after.end()) {
    ArmSites(it->second, regs);
  }
}

RunTrace ClientRuntime::TakeTrace(uint64_t run_id, const RunResult& result) {
  tracer_.FlushAllPending();  // drain partial TNT packets (crash-ended runs)
  RunTrace trace;
  trace.run_id = run_id;
  trace.failed = !result.ok();
  trace.failure = result.failure;
  for (CoreId core = 0; core < tracer_.num_cores(); ++core) {
    trace.pt_buffers.push_back(tracer_.buffer(core).bytes());
  }
  trace.watch_events = watchpoints_.events();
  trace.activity.pt_bytes = tracer_.total_bytes_generated();
  trace.activity.pt_toggles = tracer_.toggle_count();
  trace.activity.watch_traps = watchpoints_.trap_count();
  trace.activity.watch_arms = watchpoints_.arm_operations();
  trace.baseline_instructions = perf_.instructions();
  return trace;
}

}  // namespace gist
