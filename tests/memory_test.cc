#include <gtest/gtest.h>

#include <memory>

#include "src/ir/module.h"
#include "src/vm/memory.h"

namespace gist {
namespace {

std::unique_ptr<Module> ModuleWithGlobals() {
  auto module = std::make_unique<Module>();
  module->CreateGlobal("a", 2, 5);
  module->CreateGlobal("b", 3, -1);
  return module;
}

TEST(MemoryTest, GlobalsInitialized) {
  auto module = ModuleWithGlobals();
  Memory memory(*module);
  Word value = 0;
  EXPECT_EQ(memory.Read(memory.GlobalAddr(0), &value), MemFault::kOk);
  EXPECT_EQ(value, 5);
  EXPECT_EQ(memory.Read(memory.GlobalAddr(0) + 1, &value), MemFault::kOk);
  EXPECT_EQ(value, 5);
  EXPECT_EQ(memory.Read(memory.GlobalAddr(1) + 2, &value), MemFault::kOk);
  EXPECT_EQ(value, -1);
}

TEST(MemoryTest, GlobalsAreContiguousAndDistinct) {
  auto module = ModuleWithGlobals();
  Memory memory(*module);
  EXPECT_EQ(memory.GlobalAddr(0), kGlobalsBase);
  EXPECT_EQ(memory.GlobalAddr(1), kGlobalsBase + 2);
}

TEST(MemoryTest, NullAccessFaults) {
  Module module;
  Memory memory(module);
  Word value;
  EXPECT_EQ(memory.Read(kNullAddr, &value), MemFault::kNullDeref);
  EXPECT_EQ(memory.Write(kNullAddr, 1), MemFault::kNullDeref);
  EXPECT_EQ(memory.Check(kNullAddr), MemFault::kNullDeref);
}

TEST(MemoryTest, UnmappedAccessFaults) {
  Module module;
  Memory memory(module);
  Word value;
  EXPECT_EQ(memory.Read(kHeapBase + 123, &value), MemFault::kUnmapped);
  EXPECT_EQ(memory.Write(0x50, 1), MemFault::kUnmapped);
}

TEST(MemoryTest, HeapLifecycle) {
  Module module;
  Memory memory(module);
  const Addr block = memory.Alloc(4);
  EXPECT_GE(block, kHeapBase);
  Word value;
  // Zero-initialized.
  EXPECT_EQ(memory.Read(block + 3, &value), MemFault::kOk);
  EXPECT_EQ(value, 0);
  EXPECT_EQ(memory.Write(block + 3, 9), MemFault::kOk);
  EXPECT_EQ(memory.Read(block + 3, &value), MemFault::kOk);
  EXPECT_EQ(value, 9);
  EXPECT_EQ(memory.Free(block), MemFault::kOk);
  EXPECT_EQ(memory.Read(block + 3, &value), MemFault::kUseAfterFree);
  EXPECT_EQ(memory.Free(block), MemFault::kDoubleFree);
}

TEST(MemoryTest, FreeOfInteriorPointerIsInvalid) {
  Module module;
  Memory memory(module);
  const Addr block = memory.Alloc(4);
  EXPECT_EQ(memory.Free(block + 1), MemFault::kInvalidFree);
}

TEST(MemoryTest, FreeOfGlobalIsInvalid) {
  auto module = ModuleWithGlobals();
  Memory memory(*module);
  EXPECT_EQ(memory.Free(memory.GlobalAddr(0)), MemFault::kInvalidFree);
}

TEST(MemoryTest, AddressesNeverReused) {
  Module module;
  Memory memory(module);
  const Addr first = memory.Alloc(2);
  EXPECT_EQ(memory.Free(first), MemFault::kOk);
  const Addr second = memory.Alloc(2);
  EXPECT_NE(first, second);
  // The stale pointer still faults precisely.
  Word value;
  EXPECT_EQ(memory.Read(first, &value), MemFault::kUseAfterFree);
}

TEST(MemoryTest, GuardWordBetweenBlocks) {
  Module module;
  Memory memory(module);
  const Addr a = memory.Alloc(2);
  const Addr b = memory.Alloc(2);
  // One-past-the-end of block a must not alias block b.
  EXPECT_NE(a + 2, b);
  Word value;
  EXPECT_EQ(memory.Read(a + 2, &value), MemFault::kUnmapped);
}

TEST(MemoryTest, FaultToFailureMapping) {
  EXPECT_EQ(MemFaultToFailure(MemFault::kOk), FailureType::kNone);
  EXPECT_EQ(MemFaultToFailure(MemFault::kNullDeref), FailureType::kSegFault);
  EXPECT_EQ(MemFaultToFailure(MemFault::kUnmapped), FailureType::kSegFault);
  EXPECT_EQ(MemFaultToFailure(MemFault::kUseAfterFree), FailureType::kUseAfterFree);
  EXPECT_EQ(MemFaultToFailure(MemFault::kDoubleFree), FailureType::kDoubleFree);
  EXPECT_EQ(MemFaultToFailure(MemFault::kInvalidFree), FailureType::kInvalidFree);
}

TEST(MemoryTest, BytesAllocatedAccumulates) {
  Module module;
  Memory memory(module);
  memory.Alloc(3);
  memory.Alloc(5);
  EXPECT_EQ(memory.bytes_allocated(), 8 * sizeof(Word));
}

}  // namespace
}  // namespace gist
