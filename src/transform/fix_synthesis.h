// Sketch-guided fix synthesis (the paper's §6 CFix hook: "developers can use
// failure sketches to help tools like CFix automatically synthesize fixes").
//
// Given a failure sketch whose top concurrency predictor is a
// single-variable atomicity violation (RWR/WWR/RWW/WRW — Fig. 5 — or a WW
// write-write race), the synthesizer rewrites the module to make the
// violated region atomic: it allocates a fresh mutex global and, for every
// function containing statements of the violation,
//
//   * when all involved statements share one basic block, brackets them with
//     lock/unlock inside that block;
//   * otherwise locks at function entry and unlocks before every return —
//     the whole operation becomes the critical section (refusing functions
//     that contain `join`, which a coarse lock could deadlock).
//
// Order violations (WR/RW patterns, where the fix is to *order* two events,
// e.g. pbzip2's "join before free") are out of scope and reported as such —
// mirroring the CFix distinction between atomicity and order fixes.

#ifndef GIST_SRC_TRANSFORM_FIX_SYNTHESIS_H_
#define GIST_SRC_TRANSFORM_FIX_SYNTHESIS_H_

#include <memory>
#include <string>

#include "src/core/sketch.h"
#include "src/support/result.h"
#include "src/transform/rewriter.h"

namespace gist {

struct SynthesizedFix {
  std::unique_ptr<Module> module;  // the fixed program
  Predictor target;                // the violation the fix serializes
  GlobalId mutex_global = 0;       // the inserted mutex
  std::string description;         // human-readable summary of the edit
};

// Synthesizes a fix for `sketch`'s best concurrency predictor. Errors when
// the sketch has no concurrency predictor, the pattern is an order violation,
// or a coarse critical section would risk deadlock.
Result<SynthesizedFix> SynthesizeAtomicityFix(const Module& module, const FailureSketch& sketch);

// Synthesizes a fix for an order violation: the sketch names a pair of
// statements whose correct order ("first" strictly before "second") the fix
// must enforce, taken from the success-correlated order pattern when one was
// observed, otherwise from inverting a failing write-then-read pair (the
// premature write). Two strategies, both statement motions the pbzip2 and
// Apache developers actually used:
//
//   * join insertion — "first" runs in a spawned routine and "second" in the
//     spawner: insert `join <spawned thread>` before "second";
//   * spawn delay — "second" runs in a routine spawned by "first"'s
//     function: move the spawn to right after "first".
//
// Like CFix, the synthesized patch targets the *diagnosed* interleaving;
// validation against production workloads decides whether it suffices.
Result<SynthesizedFix> SynthesizeOrderFix(const Module& module, const FailureSketch& sketch);

// Dispatcher: atomicity fix when the sketch shows a Fig. 5 pattern,
// otherwise an order fix.
Result<SynthesizedFix> SynthesizeFix(const Module& module, const FailureSketch& sketch);

}  // namespace gist

#endif  // GIST_SRC_TRANSFORM_FIX_SYNTHESIS_H_
