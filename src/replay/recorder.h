// Full software record/replay baseline (the paper's Mozilla-rr comparison,
// Fig. 13) and the software PT simulator (the PIN-based simulator of §4/§6).
//
// The recorder logs complete control flow AND data flow of a run — every
// retired instruction, branch outcome, memory access with value, context
// switch, and thread event — enough to replay the execution deterministically
// (Replay() re-runs the VM and verifies the log matches). This is what a
// software record/replay system must capture, and why its overhead is orders
// of magnitude above hardware tracing: per-event instrumented callbacks
// instead of a hardware-compressed branch stream.

#ifndef GIST_SRC_REPLAY_RECORDER_H_
#define GIST_SRC_REPLAY_RECORDER_H_

#include <vector>

#include "src/hw/perf_model.h"
#include "src/ir/module.h"
#include "src/vm/vm.h"

namespace gist {

enum class RecordEventKind : uint8_t {
  kInstr,
  kBranch,
  kMemAccess,
  kContextSwitch,
  kThreadStart,
  kThreadExit,
};

struct RecordEvent {
  RecordEventKind kind;
  ThreadId tid = kNoThread;
  InstrId instr = kNoInstr;
  Addr addr = kNullAddr;
  Word value = 0;
  bool flag = false;  // branch taken / access is-write
};

class Recorder : public ExecutionObserver {
 public:
  // The recorder needs every event, in the exact interleaved order the run
  // produced it — its log is a single stream where a retired instruction and
  // the access it performed must stay adjacent. It therefore keeps the
  // default AcceptsEventBatches() == false: batching would merge the retired
  // and mem-access classes out of order and break ReplayAndVerify.
  uint32_t SubscribedEvents() const override { return kEvAll; }
  void OnContextSwitch(CoreId core, ThreadId prev, ThreadId next, FunctionId next_function,
                       BlockId next_block, uint32_t next_index) override;
  void OnBranch(ThreadId tid, CoreId core, InstrId instr, bool taken) override;
  void OnMemAccess(const MemAccessEvent& event) override;
  void OnInstrRetired(ThreadId tid, CoreId core, InstrId instr) override;
  void OnThreadStart(ThreadId tid) override;
  void OnThreadExit(ThreadId tid) override;

  const std::vector<RecordEvent>& log() const { return log_; }
  uint64_t recorded_instructions() const { return instructions_; }
  uint64_t recorded_mem_accesses() const { return mem_accesses_; }
  // Log size in bytes (record/replay systems persist this).
  uint64_t log_bytes() const { return log_.size() * sizeof(RecordEvent); }

 private:
  std::vector<RecordEvent> log_;
  uint64_t instructions_ = 0;
  uint64_t mem_accesses_ = 0;
};

// Records `workload` on `module`; returns the recorder's log plus run result.
struct Recording {
  RunResult result;
  std::vector<RecordEvent> log;
  uint64_t instructions = 0;
  uint64_t mem_accesses = 0;
  uint64_t branches = 0;
};

Recording RecordRun(const Module& module, const Workload& workload,
                    uint64_t max_steps = 2'000'000);

// Replays a recording: re-executes the workload and verifies the event log
// matches exactly. Returns true iff the replayed execution is identical —
// the determinism guarantee a record/replay debugger sells.
bool ReplayAndVerify(const Module& module, const Workload& workload, const Recording& recording,
                     uint64_t max_steps = 2'000'000);

// Software PT simulator (PIN stand-in): counts what software-only control
// flow tracing would instrument. Produces the §6 overhead comparison inputs.
struct SwPtStats {
  uint64_t instructions = 0;
  uint64_t branches = 0;
};

SwPtStats SimulateSoftwarePt(const Module& module, const Workload& workload,
                             uint64_t max_steps = 2'000'000);

}  // namespace gist

#endif  // GIST_SRC_REPLAY_RECORDER_H_
