#include "src/coop/fleet.h"

#include <algorithm>

#include "src/coop/privacy.h"
#include "src/coop/wire.h"

#include "src/support/logging.h"

namespace gist {

Fleet::Fleet(const Module& module, WorkloadGenerator generator, FleetOptions options)
    : module_(module),
      generator_(std::move(generator)),
      options_(std::move(options)),
      server_(module, options_.gist) {}

InstrumentationPlan Fleet::PlanForClient(uint64_t client_index) const {
  const InstrumentationPlan& plan = server_.plan();
  const uint32_t slots = options_.gist.watchpoint_slots;
  if (plan.watch_instrs.size() <= slots) {
    return plan;
  }
  // Cooperative rotation: this client watches a contiguous window of
  // kNumWatchpointSlots accesses, offset by its index, so the fleet covers
  // the full set collectively (§3.2.3).
  std::vector<InstrId> all(plan.watch_instrs.begin(), plan.watch_instrs.end());
  std::sort(all.begin(), all.end());
  std::unordered_set<InstrId> mine;
  for (uint32_t k = 0; k < slots; ++k) {
    mine.insert(all[(client_index * slots + k) % all.size()]);
  }
  InstrumentationPlan restricted = plan;
  restricted.watch_instrs = mine;
  auto filter = [&](std::map<InstrId, std::vector<WatchArmSite>>& sites) {
    for (auto it = sites.begin(); it != sites.end();) {
      auto& list = it->second;
      list.erase(std::remove_if(list.begin(), list.end(),
                                [&](const WatchArmSite& site) {
                                  return mine.count(site.target_access) == 0;
                                }),
                 list.end());
      it = list.empty() ? sites.erase(it) : std::next(it);
    }
  };
  filter(restricted.arm_after);
  filter(restricted.arm_before);
  return restricted;
}

FleetResult Fleet::Run(const RootCauseCheck& root_cause_check) {
  FleetResult result;
  Rng rng(options_.fleet_seed);

  // --- Phase 1: wait for the first failure in unmonitored production -------
  uint64_t run_index = 0;
  for (uint32_t i = 0; i < options_.max_first_failure_runs; ++i) {
    const Workload workload = generator_(run_index++, rng);
    VmOptions vm_options;
    vm_options.num_cores = options_.gist.num_cores;
    vm_options.max_steps = options_.max_steps_per_run;
    Vm vm(module_, workload, vm_options);
    const RunResult run = vm.Run();
    if (!run.ok() && run.failure.failing_instr != kNoInstr) {
      result.first_failure_found = true;
      result.first_failure = run.failure;
      break;
    }
  }
  if (!result.first_failure_found) {
    GIST_LOG(kWarning) << "fleet: no failure observed in production budget";
    return result;
  }
  server_.ReportFailure(result.first_failure);

  // --- Phase 2: AsT iterations ---------------------------------------------
  double overhead_sum = 0.0;
  uint64_t overhead_samples = 0;
  const CostModel cost_model;

  for (uint32_t iteration = 0; iteration < options_.max_iterations; ++iteration) {
    FleetIterationStats stats;
    stats.iteration = iteration;
    stats.sigma = server_.sigma();
    const uint32_t recurrences_at_start = server_.failure_recurrences();

    for (uint32_t i = 0; i < options_.runs_per_iteration; ++i) {
      const Workload workload = generator_(run_index++, rng);
      const InstrumentationPlan client_plan = PlanForClient(i);
      MonitoredRun run = RunMonitored(module_, client_plan, workload, options_.gist,
                                      run_index, options_.max_steps_per_run);
      // Simulated production pacing + the run itself.
      result.sim_seconds += options_.mean_run_spacing_seconds * rng.NextDouble() * 2.0;
      result.sim_seconds +=
          static_cast<double>(run.trace.baseline_instructions) / (options_.clock_ghz * 1e9);
      if (run.trace.baseline_instructions > 0) {
        overhead_sum += GistClientOverheadPercent(cost_model, run.trace.baseline_instructions,
                                                  run.trace.activity);
        ++overhead_samples;
      }
      if (run.result.ok()) {
        ++stats.successful_runs;
      } else {
        ++stats.failing_runs;
      }
      const uint32_t recurrences_before = server_.failure_recurrences();
      // The trace travels from client to server over the wire format,
      // exactly as a deployed fleet would ship it — anonymized first when
      // the deployment demands it.
      if (options_.anonymize_traces) {
        AnonymizeRunTrace(&run.trace);
      }
      Result<RunTrace> shipped = DeserializeRunTrace(SerializeRunTrace(run.trace));
      GIST_CHECK(shipped.ok()) << shipped.error().message();
      server_.AddTrace(std::move(*shipped));

      // A new recurrence of the target failure arrived: rebuild the sketch
      // and let the "developer" judge it. This is what Table 1 counts — the
      // number of failure recurrences consumed until the sketch is good.
      if (server_.failure_recurrences() > recurrences_before) {
        Result<FailureSketch> sketch = server_.BuildSketch();
        if (sketch.ok()) {
          result.sketch = *sketch;
          if (root_cause_check(*sketch)) {
            stats.root_cause_found = true;
            break;
          }
        }
      }

      // Enough data at this σ: grow the window rather than re-observing.
      const uint32_t iteration_matching =
          server_.failure_recurrences() - recurrences_at_start;
      if (iteration_matching >= options_.min_matching_failures &&
          stats.successful_runs >= options_.min_successful_runs) {
        break;
      }
    }

    stats.avg_overhead_percent =
        overhead_samples == 0 ? 0.0 : overhead_sum / static_cast<double>(overhead_samples);
    const bool saw_new_recurrence = server_.failure_recurrences() > recurrences_at_start;
    result.failure_recurrences = server_.failure_recurrences();
    result.iterations.push_back(stats);

    if (stats.root_cause_found) {
      result.root_cause_found = true;
      break;
    }
    if (!saw_new_recurrence) {
      // The target failure did not recur within this iteration's budget:
      // growing the window without new data cannot help. Keep monitoring at
      // the same σ (the iteration still counts against max_iterations).
      continue;
    }
    if (server_.ExhaustedSlice()) {
      break;  // the window already covers the whole slice
    }
    server_.AdvanceAst();
  }

  // Keep the last sketch even when no iteration satisfied the developer.
  if (!result.root_cause_found && server_.failure_recurrences() > 0) {
    Result<FailureSketch> sketch = server_.BuildSketch();
    if (sketch.ok()) {
      result.sketch = *sketch;
    }
  }

  result.failure_recurrences = server_.failure_recurrences();
  result.avg_overhead_percent =
      overhead_samples == 0 ? 0.0 : overhead_sum / static_cast<double>(overhead_samples);
  result.sigma_final = server_.sigma();
  return result;
}

}  // namespace gist
