#include "src/coop/privacy.h"

#include "src/support/str.h"

namespace gist {

AnonymizationStats AnonymizeRunTrace(RunTrace* trace) {
  AnonymizationStats stats;
  for (WatchEvent& event : trace->watch_events) {
    if (event.value != 0) {
      ++stats.values_scrubbed;
    }
    event.value = 0;
  }
  stats.message_bytes_scrubbed = trace->failure.message.size();
  // Keep a value-free description so humans can still read server logs.
  trace->failure.message = StrFormat("[anonymized] %s", FailureTypeName(trace->failure.type));
  return stats;
}

}  // namespace gist
