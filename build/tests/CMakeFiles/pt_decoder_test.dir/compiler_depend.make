# Empty compiler generated dependencies file for pt_decoder_test.
# This may be replaced when dependencies are built.
