// Failure sketch data model and construction (paper §3.2–§3.3, Figs. 1/7/8).
//
// A failure sketch is a compact, time-ordered view of the statements leading
// to a failure, annotated with the thread that executed each statement in the
// failing run, the data values hardware watchpoints observed, and the
// highest-ranked failure predictors (the differences between failing and
// successful runs).
//
// Construction = slice refinement + predictor statistics:
//   1. decode the failing runs' PT buffers → which window statements actually
//      executed (removes never-executed slice statements);
//   2. add watchpoint-discovered statements that the alias-analysis-free
//      static slice missed (§3.2.3);
//   3. order statements by the watchpoint total order, interpolating
//      unwatched statements by per-thread program order between anchors
//      (cross-core order beyond that is unavailable — a PT limitation the
//      paper accepts);
//   4. attach per-statement values and the top branch / value / concurrency
//      predictors from the statistics over all monitored runs.

#ifndef GIST_SRC_CORE_SKETCH_H_
#define GIST_SRC_CORE_SKETCH_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cache/factories.h"
#include "src/core/run_trace.h"
#include "src/core/statistics.h"
#include "src/ir/module.h"
#include "src/support/result.h"

namespace gist {

struct SketchStatement {
  InstrId instr = kNoInstr;
  ThreadId tid = kNoThread;      // thread that executed it in the failing run
  uint32_t step = 0;             // row in the sketch's time axis (1-based)
  std::optional<Word> value;     // last observed value (watched accesses)
  bool is_failure_point = false;
  bool highlighted = false;      // involved in a top failure predictor
  bool discovered_at_runtime = false;  // added by data-flow refinement
};

struct FailureSketch {
  std::string title;
  FailureType failure_type = FailureType::kNone;
  InstrId failing_instr = kNoInstr;
  std::vector<SketchStatement> statements;  // ordered by step
  std::vector<ThreadId> threads;            // distinct tids, column order

  // Best predictor per family over all monitored runs (absent if none seen).
  std::optional<ScoredPredictor> best_branch;
  std::optional<ScoredPredictor> best_value;
  std::optional<ScoredPredictor> best_value_range;
  std::optional<ScoredPredictor> best_concurrency;
  // Best Fig. 5 atomicity pattern (may differ from best_concurrency when a
  // pair pattern outranks the triples); input to fix synthesis.
  std::optional<ScoredPredictor> best_atomicity;
  // Pair pattern most correlated with SUCCESS: the order a fix for an order
  // violation must enforce (input to order-fix synthesis).
  std::optional<ScoredPredictor> success_order;

  uint32_t failing_runs_used = 0;
  uint32_t successful_runs_used = 0;
  // Distinct predictors scored while ranking (flight-recorder input,
  // DESIGN.md §9).
  uint32_t predictors_evaluated = 0;
  // Traces excluded from this sketch because their PT streams would not
  // decode (server-side quarantine plus any undecodable trace handed
  // directly to BuildFailureSketch). Purely informational: the sketch is
  // built over the surviving runs (DESIGN.md §8).
  uint64_t quarantined_traces = 0;

  bool Contains(InstrId id) const;
  std::vector<InstrId> InstrSet() const;
  // Statements in step order restricted to shared-memory accesses — the
  // sequence the ordering-accuracy metric compares (§5.2).
  std::vector<InstrId> SharedAccessOrder(const Module& module) const;
};

struct SketchOptions {
  double beta = kDefaultBeta;
  std::string title;
  // Statements known to have been added to the slice by data-flow refinement
  // (GistServer::discovered_instrs); the sketch marks them '+' even after
  // they entered the tracked window.
  const std::vector<InstrId>* discovered = nullptr;
  // Uploads the server already quarantined before `traces`; carried into
  // FailureSketch::quarantined_traces so the sketch reports the full count.
  uint64_t quarantined = 0;
  // Optional artifact store (DESIGN.md §11): sketch construction re-decodes
  // every stored trace's PT buffers per recurrence — quadratic in traces
  // without the cache, and the keys match ingest's, so even a cold campaign
  // hits here. `module_hash` must be the content hash of the module passed
  // to BuildFailureSketch; ignored when `store` is null.
  ArtifactStore* store = nullptr;
  ContentHash module_hash;
  // Streaming statistics maintained by the trace-ingest path (DESIGN.md
  // §14). When set, the sketch ranks from this aggregation instead of
  // re-extracting every stored trace's predictors, and only the FAILING
  // traces are decoded (for reference-run selection) — the caller guarantees
  // every trace in `traces` already passed ingest validation, which
  // GistServer does. Null keeps the historical batch recompute.
  const BehaviorStats* behavior = nullptr;
  // Shadow mode: with `behavior` set, ALSO run the batch recompute and
  // CHECK-fail unless both aggregations fingerprint byte-identically. The
  // incremental path's correctness gate; tests and GIST_STATS_SHADOW=1 turn
  // it on.
  bool shadow_check = false;
};

// Extracts one trace's deduplicated predictor set from its decoded PT
// streams and watch log, through the artifact store when one is attached.
// Pure function of (module, PT buffers, watch log); ingest and sketch builds
// share the same store key, so whichever runs first pays the extraction.
std::shared_ptr<const std::vector<Predictor>> GetOrExtractTracePredictors(
    const Module& module, ArtifactStore* store, const ContentHash& module_hash,
    const std::vector<std::shared_ptr<const PtDecodeResult>>& decoded, const RunTrace& trace);

// Builds a sketch from the monitored runs. `window` is the slice portion AsT
// currently tracks; `traces` are all collected run traces (at least one
// failing). A trace whose PT streams fail to decode is skipped — counted in
// FailureSketch::quarantined_traces, never fatal — so one corrupt upload
// cannot block diagnosis. Returns an error only when no failing trace
// survives.
Result<FailureSketch> BuildFailureSketch(const Module& module,
                                         const std::vector<InstrId>& window,
                                         const std::vector<RunTrace>& traces,
                                         const SketchOptions& options = {});

}  // namespace gist

#endif  // GIST_SRC_CORE_SKETCH_H_
