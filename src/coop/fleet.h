// Cooperative fleet simulation (paper §3, Fig. 2: "multiple instances of the
// same software execute in a data center or in multiple users' machines").
//
// The fleet drives the full Gist loop for one bug:
//   1. production runs execute uninstrumented until the target failure first
//      manifests; its report seeds the server (static slice, initial plan);
//   2. each AsT iteration ships the current instrumentation to the clients,
//      collects run traces (failing and successful), and builds a sketch;
//   3. a developer-supplied root-cause check decides whether to stop or to
//      double σ and keep monitoring.
//
// Execution engine (DESIGN.md, "Execution engine"): each iteration freezes
// the server's plan into an immutable PlanSnapshot, fans monitored runs out
// onto a ThreadPool (`FleetOptions::jobs` workers), and merges the resulting
// RunTraces back into the server in run-index order on the coordinator
// thread. Every production run draws its workload from its own generator,
// seeded by DeriveSeed(fleet_seed, run_index), so a fleet's FleetResult is
// bit-identical no matter how many workers execute it — parallelism is a
// pure throughput knob.
//
// When the monitored slice needs more watchpoints than the 4 available, the
// snapshot rotates watch subsets across clients (the cooperative strategy of
// §3.2.3) so all addresses are covered collectively.
//
// Latency accounting mirrors Table 1: the simulated wall-clock to the final
// sketch is dominated by waiting for failure recurrences; runs are spaced by
// a configurable production pacing.

#ifndef GIST_SRC_COOP_FLEET_H_
#define GIST_SRC_COOP_FLEET_H_

#include <functional>
#include <vector>

#include "src/core/gist.h"
#include "src/faultsim/faultsim.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace gist {

class CampaignTracker;
class FlightRecorder;
class HotPathProfiler;

// Produces the workload of production run `run_index`. The fleet hands every
// run a private generator seeded by DeriveSeed(fleet_seed, run_index);
// generators must consume randomness only from `rng` so runs stay
// independent of execution order.
using WorkloadGenerator = std::function<Workload(uint64_t run_index, Rng& rng)>;

// Developer stand-in: does this sketch expose the root cause?
using RootCauseCheck = std::function<bool(const FailureSketch&)>;

struct FleetOptions {
  GistOptions gist;
  // Hard cap of monitored production runs per AsT iteration. An iteration
  // normally ends much earlier: as soon as it has gathered
  // `min_matching_failures` new recurrences of the target failure and
  // `min_successful_runs` successful runs — once the sketch still lacks the
  // root cause with that data, more runs at the same σ add nothing and the
  // window must grow instead. This early exit is what keeps the paper's
  // recurrence counts in the 2–5 range; the cap only matters when the
  // failure is very rare ("the once every 24 hours bugs").
  uint32_t runs_per_iteration = 400;
  uint32_t max_iterations = 10;
  uint32_t min_matching_failures = 1;
  uint32_t min_successful_runs = 8;
  // Scrub data values and failure messages from shipped traces (paper §6's
  // privacy discussion; see src/coop/privacy.h for exactly what survives).
  bool anonymize_traces = false;
  uint32_t max_first_failure_runs = 2000;  // budget to catch the first failure
  uint64_t fleet_seed = 1;
  double clock_ghz = 2.4;                 // converts instruction counts to time
  double mean_run_spacing_seconds = 2.0;  // production pacing between runs
  uint64_t max_steps_per_run = 2'000'000;
  // Worker threads executing monitored runs (0 = hardware concurrency).
  // Results are identical for every value; only wall-clock changes.
  uint32_t jobs = 1;
  // Optional caller-owned worker pool. When set, Run() fans out on it instead
  // of constructing a pool of `jobs` threads per call — corpus sweeps
  // (src/corpus) run hundreds of fleets back to back, and spawning/joining a
  // fresh pool per program dominated small-program sweeps. The pool's size
  // plays the role of `jobs`; as with `jobs`, every FleetResult byte is
  // identical for any pool size. Must outlive Run().
  ThreadPool* shared_pool = nullptr;
  // Deterministic fault injection over monitored runs (DESIGN.md §8). Each
  // monitored run's FaultPlan derives from (faults, fleet_seed, run_index),
  // so an injected fleet stays bit-identical at every `jobs`. Disabled (the
  // default), the fleet behaves byte-for-byte as if this field didn't exist.
  // Phase 1 — production before the first failure — is never faulted.
  FaultOptions faults;
  // Optional flight recorder (DESIGN.md §9). The fleet advances its virtual
  // clock and publishes per-run metrics on the coordinator thread, in
  // run-index order over the CONSUMED prefix only — runs speculated past an
  // early exit never touch it — so the recorder's metrics snapshot and span
  // trace are bit-identical for every `jobs`, like the FleetResult itself.
  // Null (the default) records nothing and costs nothing.
  FlightRecorder* recorder = nullptr;
  // Optional hot-path profiler (DESIGN.md §10). When set, every run — phase-1
  // probe or monitored, healthy or degraded — collects a BlockProfile shard,
  // and the coordinator folds the CONSUMED prefix into the profiler in
  // run-index order, the recorder discipline above: the aggregated profile is
  // bit-identical for every `jobs`, faults on or off. The fleet attaches the
  // profiler to the server's decoded module on Run() entry unless the caller
  // attached it already. Null (the default) profiles nothing and keeps the
  // interpreter's profiling increments compiled out of the hot path.
  HotPathProfiler* profiler = nullptr;
  // Optional campaign tracker (DESIGN.md §14). The fleet advances its
  // virtual clock alongside the recorder's — consumed prefix only, on the
  // coordinator — and records one CampaignIterationSample at the end of each
  // AsT iteration (sketch statement sequence, top predictor ranking,
  // rotation coverage, survivorship). The resulting gist.campaign.v1 journal
  // is bit-identical for every `jobs`, execution tier, and cache state, like
  // the recorder's exports. Null records nothing and costs nothing.
  CampaignTracker* campaign = nullptr;
  // Per-run execution-tier override (DESIGN.md §12): when set, monitored run
  // `run_index` executes under tier_for_run(run_index) instead of
  // `gist.tier`. The callback must be a pure function of the run index so
  // the fleet stays bit-identical at every `jobs`. Setting it (or
  // `gist.tier == kSuper`) makes phase 1 collect probe profile shards and
  // the server compile the superinstruction tier from the consumed prefix.
  // Tier choice never changes a run result or a pipeline-visible export byte
  // (only the dispatcher's own "engine." batching counters may differ) — this
  // exists so tests can mix tiers across workers of one fleet and assert
  // exactly that.
  std::function<ExecTier(uint64_t run_index)> tier_for_run;
};

struct FleetIterationStats {
  uint32_t iteration = 0;
  uint32_t sigma = 0;
  uint32_t failing_runs = 0;
  uint32_t successful_runs = 0;
  double avg_overhead_percent = 0.0;
  bool root_cause_found = false;
  // Degradation accounting (all zero while faults are disabled).
  uint32_t lost_runs = 0;         // killed / dropped / timed out; never arrived
  uint32_t quarantined_runs = 0;  // arrived but failed PT validation
  uint32_t retries = 0;           // lost runs re-requested within the budget
  // False when so many runs were lost or quarantined that fewer than
  // `FaultOptions::quorum_fraction` of the iteration's runs survived; the
  // fleet then re-monitors at the same σ instead of advancing AsT.
  bool quorum_met = true;
};

struct FleetResult {
  bool first_failure_found = false;
  bool root_cause_found = false;
  FailureReport first_failure;
  FailureSketch sketch;
  std::vector<FleetIterationStats> iterations;
  // Failing-run recurrences (after the initial report) consumed until the
  // final sketch — Table 1's "# failure recurrences".
  uint32_t failure_recurrences = 0;
  // Simulated wall-clock from first failure to final sketch — Table 1's
  // "<time>".
  double sim_seconds = 0.0;
  // Mean client-side overhead across all monitored runs (§5.3).
  double avg_overhead_percent = 0.0;
  uint32_t sigma_final = 0;
  // Degradation totals across all iterations (zero while faults are
  // disabled).
  uint32_t lost_runs = 0;
  uint32_t quarantined_runs = 0;
  uint32_t retries = 0;
};

class Fleet {
 public:
  Fleet(const Module& module, WorkloadGenerator generator, FleetOptions options);

  // Runs the full loop; `root_cause_check` plays the developer.
  FleetResult Run(const RootCauseCheck& root_cause_check);

  const GistServer& server() const { return server_; }

 private:
  // Phase 1: uninstrumented production until the target failure first
  // manifests. Probes run in parallel; the earliest failing run index wins
  // deterministically. Returns the next unconsumed run index via
  // `next_run_index`. Non-null `selection_profile` additionally merges the
  // consumed probes' BlockProfile shards in run-index order — the
  // superinstruction tier's selection input, a pure function of the consumed
  // prefix and therefore of the fleet seed alone (DESIGN.md §12).
  void FindFirstFailure(ThreadPool& pool, FleetResult* result, uint64_t* next_run_index,
                        BlockProfile* selection_profile);

  // The workload of production run `run_index` (its private rng stream).
  Workload WorkloadFor(uint64_t run_index) const;

  // Simulated production spacing before run `run_index`, drawn from a pacing
  // stream independent of the workload stream.
  double PacingSecondsFor(uint64_t run_index) const;

  const Module& module_;
  WorkloadGenerator generator_;
  FleetOptions options_;
  GistServer server_;
};

}  // namespace gist

#endif  // GIST_SRC_COOP_FLEET_H_
