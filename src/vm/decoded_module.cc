#include "src/vm/decoded_module.h"

namespace gist {
namespace {

uint8_t FlagsFor(const Instruction& instr) {
  uint8_t flags = 0;
  if (instr.IsSharedAccess()) {
    flags |= kDiMemAccess;
  }
  if (instr.op == Opcode::kBr) {
    flags |= kDiBranch;
  }
  if (instr.IsCallLike()) {
    flags |= kDiCallLike;
  }
  if (instr.IsTerminator()) {
    flags |= kDiTerminator;
  }
  return flags;
}

ExecOp ExecOpFor(const Instruction& instr) {
  switch (instr.op) {
    case Opcode::kConst:
      return ExecOp::kConst;
    case Opcode::kMove:
      return ExecOp::kMove;
    case Opcode::kNot:
      return ExecOp::kNot;
    case Opcode::kBinOp:
      switch (instr.binop) {
        case BinOp::kAdd:
          return ExecOp::kAdd;
        case BinOp::kSub:
          return ExecOp::kSub;
        case BinOp::kMul:
          return ExecOp::kMul;
        case BinOp::kDiv:
          return ExecOp::kDiv;
        case BinOp::kRem:
          return ExecOp::kRem;
        case BinOp::kEq:
          return ExecOp::kEq;
        case BinOp::kNe:
          return ExecOp::kNe;
        case BinOp::kLt:
          return ExecOp::kLt;
        case BinOp::kLe:
          return ExecOp::kLe;
        case BinOp::kGt:
          return ExecOp::kGt;
        case BinOp::kGe:
          return ExecOp::kGe;
        case BinOp::kAnd:
          return ExecOp::kAnd;
        case BinOp::kOr:
          return ExecOp::kOr;
        case BinOp::kXor:
          return ExecOp::kXor;
        case BinOp::kShl:
          return ExecOp::kShl;
        case BinOp::kShr:
          return ExecOp::kShr;
      }
      GIST_UNREACHABLE("bad binop");
    case Opcode::kLoad:
      return ExecOp::kLoad;
    case Opcode::kStore:
      return ExecOp::kStore;
    case Opcode::kAddrOfGlobal:
      return ExecOp::kAddrOfGlobal;
    case Opcode::kGep:
      return ExecOp::kGep;
    case Opcode::kAlloc:
      return ExecOp::kAlloc;
    case Opcode::kFree:
      return ExecOp::kFree;
    case Opcode::kCall:
      return ExecOp::kCall;
    case Opcode::kRet:
      return ExecOp::kRet;
    case Opcode::kBr:
      return ExecOp::kBr;
    case Opcode::kJmp:
      return ExecOp::kJmp;
    case Opcode::kAssert:
      return ExecOp::kAssert;
    case Opcode::kThreadCreate:
      return ExecOp::kThreadCreate;
    case Opcode::kThreadJoin:
      return ExecOp::kThreadJoin;
    case Opcode::kLock:
      return ExecOp::kLock;
    case Opcode::kUnlock:
      return ExecOp::kUnlock;
    case Opcode::kInput:
      return ExecOp::kInput;
    case Opcode::kPrint:
      return ExecOp::kPrint;
    case Opcode::kNop:
      return ExecOp::kNop;
  }
  GIST_UNREACHABLE("bad opcode");
}

}  // namespace

DecodedModule::DecodedModule(const Module& module) : module_(module) {
  functions_.resize(module.num_functions());
  for (FunctionId fid = 0; fid < module.num_functions(); ++fid) {
    const Function& function = module.function(fid);
    DecodedFunction& decoded = functions_[fid];
    decoded.id = fid;
    decoded.num_regs = function.num_regs();

    size_t total = 0;
    for (BlockId bid = 0; bid < function.num_blocks(); ++bid) {
      total += function.block(bid).size();
    }
    // Instructions live in one contiguous array per function; reserve the
    // exact size up front so block pointers into it stay stable.
    decoded.instrs.reserve(total);
    decoded.blocks.resize(function.num_blocks());

    for (BlockId bid = 0; bid < function.num_blocks(); ++bid) {
      const BasicBlock& block = function.block(bid);
      const size_t offset = decoded.instrs.size();
      for (const Instruction& instr : block.instructions()) {
        DecodedInstr di;
        di.id = instr.id;
        di.op = instr.op;
        di.exec = ExecOpFor(instr);
        di.flags = FlagsFor(instr);
        di.binop = instr.binop;
        di.dst = instr.dst;
        di.num_operands = static_cast<uint32_t>(instr.operands.size());
        if (!instr.operands.empty()) {
          di.op0 = instr.operands[0];
        }
        if (instr.operands.size() > 1) {
          di.op1 = instr.operands[1];
        }
        di.imm = instr.imm;
        di.callee = instr.callee;
        di.global = instr.global;
        di.src = &instr;
        // Validate once so the interpreter can index registers unchecked.
        GIST_CHECK(instr.dst == kNoReg || instr.dst < decoded.num_regs)
            << "decoded " << function.name() << ": dst register out of range";
        for (Reg operand : instr.operands) {
          GIST_CHECK_LT(operand, decoded.num_regs)
              << "decoded " << function.name() << ": operand register out of range";
        }
        if (instr.op == Opcode::kCall || instr.op == Opcode::kThreadCreate) {
          GIST_CHECK_LT(instr.callee, module.num_functions())
              << "decoded " << function.name() << ": callee out of range";
        }
        decoded.instrs.push_back(di);
      }
      decoded.blocks[bid] = DecodedBlock{bid, decoded.instrs.data() + offset,
                                         static_cast<uint32_t>(block.size()), num_blocks_++};
    }

    // Second pass: resolve branch targets to block pointers.
    for (DecodedInstr& di : decoded.instrs) {
      if (di.op == Opcode::kBr || di.op == Opcode::kJmp) {
        GIST_CHECK_LT(di.src->target0, decoded.blocks.size())
            << "decoded " << function.name() << ": branch target out of range";
        di.target0 = &decoded.blocks[di.src->target0];
        if (di.op == Opcode::kBr) {
          GIST_CHECK_LT(di.src->target1, decoded.blocks.size())
              << "decoded " << function.name() << ": branch target out of range";
          di.target1 = &decoded.blocks[di.src->target1];
        }
      }
    }
  }
}

}  // namespace gist
