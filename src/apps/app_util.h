// Shared construction helpers for the bug-reproduction apps.
//
// The loop-emission patterns themselves moved to src/ir/emit.h so the
// synthesized failure corpus (src/corpus) can build on them without linking
// the 11 hand-ported apps; this header remains as the apps' include point.
//
// It also hosts the one telemetry-export surface every driver shares
// (DESIGN.md §14): `gist diagnose*`, `gist fix-app`, `gist corpus run/score`,
// and the bench sweeps all accept the same --metrics-json / --trace-json /
// --profile-json / --profile-collapsed / --campaign-json flags, parsed and
// written through the helpers below instead of per-command copies.

#ifndef GIST_SRC_APPS_APP_UTIL_H_
#define GIST_SRC_APPS_APP_UTIL_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>

#include "src/ir/emit.h"
#include "src/obs/campaign.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/profiler.h"

namespace gist {

// Where each deterministic observability artifact should be written; empty
// means "not requested". One instance per command invocation.
struct TelemetryExportOptions {
  std::string metrics_json;       // flight recorder's metrics snapshot
  std::string trace_json;         // Chrome trace-event span stream
  std::string profile_json;       // hot-path profile (gist.profile.v1)
  std::string profile_collapsed;  // collapsed flamegraph stacks
  std::string campaign_json;      // convergence journal (gist.campaign.v1)

  bool wants_recorder() const { return !metrics_json.empty() || !trace_json.empty(); }
  bool wants_profiler() const { return !profile_json.empty() || !profile_collapsed.empty(); }
  bool wants_campaign() const { return !campaign_json.empty(); }
};

// Outcome of offering one argv token to the telemetry parser.
enum class TelemetryFlagParse {
  kNotTelemetry,  // not an export flag; the caller's parser should handle it
  kConsumed,      // recognized, value consumed (*i advanced past it)
  kMissingValue,  // recognized but the path argument is absent: usage error
};

// Offers argv[*i] to the shared export flags. On a match the path in
// argv[*i + 1] is stored and *i is advanced over it.
inline TelemetryFlagParse ParseTelemetryExportFlag(int argc, char** argv, int* i,
                                                   TelemetryExportOptions* out) {
  const std::string_view arg = argv[*i];
  std::string* slot = nullptr;
  if (arg == "--metrics-json") {
    slot = &out->metrics_json;
  } else if (arg == "--trace-json") {
    slot = &out->trace_json;
  } else if (arg == "--profile-json") {
    slot = &out->profile_json;
  } else if (arg == "--profile-collapsed") {
    slot = &out->profile_collapsed;
  } else if (arg == "--campaign-json") {
    slot = &out->campaign_json;
  } else {
    return TelemetryFlagParse::kNotTelemetry;
  }
  if (*i + 1 >= argc) {
    return TelemetryFlagParse::kMissingValue;
  }
  *slot = argv[++*i];
  return TelemetryFlagParse::kConsumed;
}

// Writes `content` to `path`; false (with a message on stderr) on failure.
inline bool WriteTelemetryFile(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  file << content;
  return true;
}

// Writes every requested artifact from whichever sources the command wired
// up. A requested artifact whose source is null is an error (the command
// forgot to attach the recorder/profiler/tracker), reported like an
// unwritable file. Returns false when anything could not be written.
inline bool ExportTelemetry(const TelemetryExportOptions& options,
                            const FlightRecorder* recorder, const HotPathProfiler* profiler,
                            const CampaignTracker* campaign) {
  bool ok = true;
  if (!options.metrics_json.empty()) {
    if (recorder == nullptr) {
      std::fprintf(stderr, "error: --metrics-json needs a flight recorder\n");
      ok = false;
    } else {
      ok = WriteTelemetryFile(options.metrics_json, recorder->MetricsJson()) && ok;
    }
  }
  if (!options.trace_json.empty()) {
    if (recorder == nullptr) {
      std::fprintf(stderr, "error: --trace-json needs a flight recorder\n");
      ok = false;
    } else {
      ok = WriteTelemetryFile(options.trace_json, recorder->TraceJson()) && ok;
    }
  }
  if (!options.profile_json.empty()) {
    if (profiler == nullptr) {
      std::fprintf(stderr, "error: --profile-json needs a profiler\n");
      ok = false;
    } else {
      ok = WriteTelemetryFile(options.profile_json, profiler->ProfileJson()) && ok;
    }
  }
  if (!options.profile_collapsed.empty()) {
    if (profiler == nullptr) {
      std::fprintf(stderr, "error: --profile-collapsed needs a profiler\n");
      ok = false;
    } else {
      ok = WriteTelemetryFile(options.profile_collapsed, profiler->ProfileCollapsed()) && ok;
    }
  }
  if (!options.campaign_json.empty()) {
    if (campaign == nullptr) {
      std::fprintf(stderr, "error: --campaign-json needs a campaign tracker\n");
      ok = false;
    } else {
      ok = WriteTelemetryFile(options.campaign_json, campaign->JournalJson()) && ok;
    }
  }
  return ok;
}

}  // namespace gist

#endif  // GIST_SRC_APPS_APP_UTIL_H_
