// Chaos contract of the fault-injection layer (DESIGN.md §8):
//   1. faults OFF and faults ON-at-rate-zero are byte-identical — the layer
//      is invisible until it injects;
//   2. an injected fleet is still a pure function of (module, options,
//      fleet_seed): bit-identical at every worker count;
//   3. sketch equivalence under quorum: any fault plan that leaves at least
//      the configured quorum of runs intact preserves the diagnosis — every
//      Table 1 app still produces a sketch containing its root cause;
//   4. when attrition breaks quorum, AsT holds σ instead of advancing.

#include <gtest/gtest.h>

#include <string>

#include "src/apps/app.h"
#include "src/coop/fleet.h"
#include "src/obs/flight_recorder.h"

namespace gist {
namespace {

FleetOptions BaseOptions(uint64_t fleet_seed, uint32_t jobs) {
  FleetOptions options;
  options.runs_per_iteration = 400;
  options.max_iterations = 8;
  options.fleet_seed = fleet_seed;
  options.jobs = jobs;
  return options;
}

// Moderate production attrition: every fault class fires, but well inside the
// 50% quorum — the regime the degradation machinery must shrug off.
FaultOptions ModerateFaults() {
  FaultOptions faults;
  faults.enabled = true;
  faults.kill_permille = 40;
  faults.truncate_pt_permille = 30;
  faults.corrupt_pt_permille = 30;
  faults.drop_wire_permille = 30;
  faults.reorder_wire_permille = 150;
  faults.exhaust_watchpoints_permille = 40;
  faults.delay_result_permille = 50;
  faults.wire_mtu_bytes = 512;  // small MTU: real multi-chunk uploads
  return faults;
}

FleetResult RunFleet(const BugApp& app, const FleetOptions& options,
                     FlightRecorder* recorder = nullptr) {
  FleetOptions fleet_options = options;
  fleet_options.recorder = recorder;
  Fleet fleet(
      app.module(),
      [&app](uint64_t run_index, Rng& rng) { return app.MakeWorkload(run_index, rng); },
      fleet_options);
  const std::vector<InstrId>& root_cause = app.root_cause_instrs();
  return fleet.Run([&](const FailureSketch& sketch) {
    for (InstrId id : root_cause) {
      if (!sketch.Contains(id)) {
        return false;
      }
    }
    return true;
  });
}

void ExpectIdentical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.first_failure_found, b.first_failure_found);
  EXPECT_EQ(a.root_cause_found, b.root_cause_found);
  EXPECT_EQ(a.first_failure.failing_instr, b.first_failure.failing_instr);
  EXPECT_EQ(a.failure_recurrences, b.failure_recurrences);
  EXPECT_EQ(a.sigma_final, b.sigma_final);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.avg_overhead_percent, b.avg_overhead_percent);
  EXPECT_EQ(a.lost_runs, b.lost_runs);
  EXPECT_EQ(a.quarantined_runs, b.quarantined_runs);
  EXPECT_EQ(a.retries, b.retries);

  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (size_t i = 0; i < a.iterations.size(); ++i) {
    const FleetIterationStats& ia = a.iterations[i];
    const FleetIterationStats& ib = b.iterations[i];
    EXPECT_EQ(ia.sigma, ib.sigma);
    EXPECT_EQ(ia.failing_runs, ib.failing_runs);
    EXPECT_EQ(ia.successful_runs, ib.successful_runs);
    EXPECT_EQ(ia.lost_runs, ib.lost_runs);
    EXPECT_EQ(ia.quarantined_runs, ib.quarantined_runs);
    EXPECT_EQ(ia.retries, ib.retries);
    EXPECT_EQ(ia.quorum_met, ib.quorum_met);
    EXPECT_EQ(ia.root_cause_found, ib.root_cause_found);
  }

  ASSERT_EQ(a.sketch.statements.size(), b.sketch.statements.size());
  for (size_t i = 0; i < a.sketch.statements.size(); ++i) {
    const SketchStatement& sa = a.sketch.statements[i];
    const SketchStatement& sb = b.sketch.statements[i];
    EXPECT_EQ(sa.instr, sb.instr);
    EXPECT_EQ(sa.tid, sb.tid);
    EXPECT_EQ(sa.step, sb.step);
    EXPECT_EQ(sa.value, sb.value);
  }
  EXPECT_EQ(a.sketch.quarantined_traces, b.sketch.quarantined_traces);
}

TEST(FleetChaosTest, RateZeroFaultsAreByteIdenticalToDisabled) {
  // Enabling the layer without rates must not perturb a single bit: the fault
  // stream is salted away from the workload/pacing streams, and the healthy
  // transport path is the identity.
  for (const char* name : {"apache-2", "pbzip2"}) {
    std::unique_ptr<BugApp> app = MakeAppByName(name);
    ASSERT_NE(app, nullptr);
    FleetOptions off = BaseOptions(11, /*jobs=*/2);
    FleetOptions zero = off;
    zero.faults.enabled = true;  // all rates stay zero
    SCOPED_TRACE(name);
    ExpectIdentical(RunFleet(*app, off), RunFleet(*app, zero));
  }
}

TEST(FleetChaosTest, FaultedFleetIsBitIdenticalAcrossWorkerCounts) {
  for (const char* name : {"apache-2", "transmission"}) {
    std::unique_ptr<BugApp> app = MakeAppByName(name);
    ASSERT_NE(app, nullptr);
    FleetOptions sequential = BaseOptions(2015, /*jobs=*/1);
    sequential.faults = ModerateFaults();
    FleetOptions parallel = BaseOptions(2015, /*jobs=*/8);
    parallel.faults = ModerateFaults();
    SCOPED_TRACE(name);
    FlightRecorder seq_recorder;
    FlightRecorder par_recorder;
    ExpectIdentical(RunFleet(*app, sequential, &seq_recorder),
                    RunFleet(*app, parallel, &par_recorder));
    // Determinism extends to the flight recorder: the merged metrics snapshot
    // and the virtual-time trace must be the same bytes under faults, too.
    EXPECT_EQ(seq_recorder.MetricsJson(), par_recorder.MetricsJson());
    EXPECT_EQ(seq_recorder.TraceJson(), par_recorder.TraceJson());
  }
}

TEST(FleetChaosTest, AllAppsSurviveQuorumPreservingFaults) {
  // The §8 invariant: under any fault plan that keeps a quorum of runs
  // intact, the sketch still contains the root cause for every Table 1 app.
  for (const std::unique_ptr<BugApp>& app : MakeAllApps()) {
    FleetOptions options = BaseOptions(7, /*jobs=*/0);
    options.faults = ModerateFaults();
    const FleetResult result = RunFleet(*app, options);
    SCOPED_TRACE(app->info().name);
    ASSERT_TRUE(result.first_failure_found);
    EXPECT_TRUE(result.root_cause_found);
    for (InstrId id : app->root_cause_instrs()) {
      EXPECT_TRUE(result.sketch.Contains(id)) << "missing root-cause instr " << id;
    }
    for (const FleetIterationStats& stats : result.iterations) {
      EXPECT_TRUE(stats.quorum_met);
    }
  }
}

TEST(FleetChaosTest, FaultsActuallyFireAndAreAccounted) {
  // Sanity against a silently disabled layer: at moderate rates across the
  // whole fleet, some runs must be lost and retried somewhere. The tallies
  // live in the flight recorder's registry (the single accounting surface,
  // DESIGN.md §9); per-fleet they must agree with the FleetResult totals.
  MetricsRegistry totals;
  for (const char* name : {"apache-2", "pbzip2", "memcached"}) {
    std::unique_ptr<BugApp> app = MakeAppByName(name);
    ASSERT_NE(app, nullptr);
    FleetOptions options = BaseOptions(13, /*jobs=*/4);
    options.faults = ModerateFaults();
    FlightRecorder recorder;
    const FleetResult result = RunFleet(*app, options, &recorder);
    SCOPED_TRACE(name);
    EXPECT_EQ(recorder.metrics().counter("fleet.runs.lost"), result.lost_runs);
    EXPECT_EQ(recorder.metrics().counter("fleet.runs.quarantined"), result.quarantined_runs);
    EXPECT_EQ(recorder.metrics().counter("fleet.retries"), result.retries);
    totals.Merge(recorder.metrics());
  }
  EXPECT_GT(totals.counter("fleet.runs.lost"), 0u);
  EXPECT_GT(totals.counter("fleet.retries"), 0u);
  // Every configured fault class must actually land somewhere in the sweep.
  for (const char* fault_class :
       {"kill", "truncate_pt", "corrupt_pt", "drop_wire", "reorder_wire",
        "exhaust_watchpoints", "delay_result"}) {
    EXPECT_GT(totals.counter(std::string("fleet.faults.injected.") + fault_class), 0u)
        << fault_class << " never fired";
  }
  EXPECT_GT(totals.counter("fleet.faults.survived"), 0u);
}

TEST(FleetChaosTest, BrokenQuorumHoldsSigma) {
  // Losses heavy enough to break the 50% quorum: whenever an iteration saw
  // new recurrences but failed quorum, the next iteration must re-monitor at
  // the SAME σ (AsT held), and heavy attrition must show up as lost runs.
  std::unique_ptr<BugApp> app = MakeAppByName("apache-2");
  ASSERT_NE(app, nullptr);
  FleetOptions options = BaseOptions(5, /*jobs=*/4);
  options.faults.enabled = true;
  options.faults.kill_permille = 700;
  // Kill on the very first step so every planned kill actually lands inside
  // the run, whatever its length.
  options.faults.min_kill_steps = 1;
  options.faults.max_kill_steps = 1;
  const FleetResult result = RunFleet(*app, options);
  ASSERT_TRUE(result.first_failure_found);
  EXPECT_GT(result.lost_runs, 0u);
  for (size_t i = 0; i + 1 < result.iterations.size(); ++i) {
    if (!result.iterations[i].quorum_met) {
      EXPECT_EQ(result.iterations[i + 1].sigma, result.iterations[i].sigma)
          << "AsT advanced past a broken quorum at iteration " << i;
    }
  }
}

}  // namespace
}  // namespace gist
