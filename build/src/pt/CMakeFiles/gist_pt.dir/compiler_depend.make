# Empty compiler generated dependencies file for gist_pt.
# This may be replaced when dependencies are built.
