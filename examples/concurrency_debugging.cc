// Concurrency debugging walkthrough: the paper's flagship Pbzip2 bug (Fig. 1)
// diagnosed step by step, with commentary on what each stage of the pipeline
// contributes — watch how Adaptive Slice Tracking grows the window and how
// the hardware watchpoints discover the racing store that the alias-free
// static slice cannot see.
//
// Build & run:   ./build/examples/concurrency_debugging

#include <cstdio>

#include "src/apps/app.h"
#include "src/core/gist.h"

int main() {
  using namespace gist;

  auto app = MakeAppByName("pbzip2");
  const Module& module = app->module();

  std::printf("== Pbzip2 bug #1: use-after-free of the queue mutex ==\n");
  std::printf("%s, version %s (original size: %llu LOC)\n\n", app->info().kind.c_str(),
              app->info().version.c_str(),
              static_cast<unsigned long long>(app->info().original_loc));

  // Production until the first crash.
  Rng rng(7);
  FailureReport report;
  bool found = false;
  uint64_t runs_until_failure = 0;
  while (!found && runs_until_failure < 5000) {
    Workload workload = app->MakeWorkload(runs_until_failure++, rng);
    Vm vm(module, workload, VmOptions{});
    RunResult result = vm.Run();
    if (!result.ok()) {
      report = result.failure;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "race never manifested\n");
    return 1;
  }
  std::printf("Crash after %llu production runs: %s\n",
              static_cast<unsigned long long>(runs_until_failure), report.message.c_str());
  std::printf("Failing statement: \"%s\" in %s()\n\n",
              module.instr(report.failing_instr).loc.text.c_str(),
              module.instr(report.failing_instr).loc.function.c_str());

  GistOptions options;
  options.title = "pbzip2 bug #1 (paper Fig. 1)";
  GistServer server(module, options);
  server.ReportFailure(report);

  std::printf("Static backward slice: %zu statements. Note what is MISSING:\n",
              server.slice().instrs.size());
  std::printf("the racing store `f->mut = NULL` — Gist's slicer deliberately has no\n");
  std::printf("alias analysis, so stores reaching a load through memory are invisible\n");
  std::printf("statically. The hardware watchpoints will discover it at runtime.\n\n");

  // AsT iterations.
  for (int iteration = 0; iteration < 4; ++iteration) {
    std::printf("-- AsT iteration %d: tracking sigma=%u statements, %zu PT start blocks, "
                "%zu watch sites --\n",
                iteration, server.sigma(), server.plan().pt_start_blocks.size(),
                server.plan().watch_instrs.size());
    for (int i = 0; i < 120; ++i) {
      Workload workload = app->MakeWorkload(runs_until_failure++, rng);
      MonitoredRun run = RunMonitored(module, server.plan(), workload, options, runs_until_failure);
      server.AddTrace(std::move(run.trace));
    }
    Result<FailureSketch> sketch = server.BuildSketch();
    if (sketch.ok()) {
      bool complete = true;
      for (InstrId id : app->root_cause_instrs()) {
        complete = complete && sketch->Contains(id);
      }
      std::printf("   sketch: %zu statements, %u failing / %u successful runs used%s\n",
                  sketch->InstrSet().size(), sketch->failing_runs_used,
                  sketch->successful_runs_used,
                  complete ? "  -> root cause visible, stopping" : "");
      if (complete) {
        RenderOptions render;
        render.ideal = &app->ideal_sketch();
        std::printf("\n%s\n", RenderFailureSketch(module, *sketch, render).c_str());
        std::printf("Fix (what the pbzip2 developers did): synchronize so cons() finishes\n"
                    "before main() frees f->mut — i.e. eliminate the [*] RW race above.\n");
        return 0;
      }
    }
    server.AdvanceAst();
  }
  std::printf("root cause not isolated within the iteration budget\n");
  return 1;
}
