#include "src/coop/fleet.h"

#include <algorithm>
#include <optional>

#include "src/coop/privacy.h"
#include "src/coop/wire.h"
#include "src/obs/campaign.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/profiler.h"
#include "src/support/logging.h"

namespace gist {
namespace {

// Salt separating the pacing stream from the workload stream: a generator
// may consume any amount of randomness without perturbing the simulated
// production spacing of later runs.
constexpr uint64_t kPacingSalt = 0x70616365'70616365ULL;  // "pacepace"

// Runs speculated past an early-exit point are discarded unmerged, so batch
// sizing only trades wasted work against parallelism. Sequential fleets use
// batch 1 (zero speculation, exactly the pre-engine behavior); parallel
// fleets keep every worker busy for two rounds per merge.
uint32_t BatchSize(const ThreadPool& pool) {
  return pool.size() == 1 ? 1 : pool.size() * 2;
}

}  // namespace

Fleet::Fleet(const Module& module, WorkloadGenerator generator, FleetOptions options)
    : module_(module),
      generator_(std::move(generator)),
      options_(std::move(options)),
      server_(module, options_.gist) {}

Workload Fleet::WorkloadFor(uint64_t run_index) const {
  Rng rng(DeriveSeed(options_.fleet_seed, run_index));
  return generator_(run_index, rng);
}

double Fleet::PacingSecondsFor(uint64_t run_index) const {
  Rng rng(DeriveSeed(options_.fleet_seed ^ kPacingSalt, run_index));
  return options_.mean_run_spacing_seconds * rng.NextDouble() * 2.0;
}

void Fleet::FindFirstFailure(ThreadPool& pool, FleetResult* result, uint64_t* next_run_index,
                             BlockProfile* selection_profile) {
  const uint32_t batch_size = BatchSize(pool);
  FlightRecorder* recorder = options_.recorder;
  HotPathProfiler* profiler = options_.profiler;
  const bool collect_shards = profiler != nullptr || selection_profile != nullptr;
  std::optional<RunMetricsPublisher> publisher;
  if (recorder != nullptr) {
    publisher.emplace(&recorder->metrics());
  }
  uint64_t base = 0;
  while (base < options_.max_first_failure_runs && !result->first_failure_found) {
    const uint32_t batch = static_cast<uint32_t>(
        std::min<uint64_t>(batch_size, options_.max_first_failure_runs - base));
    std::vector<FailureReport> failures(batch);
    std::vector<RunStats> probe_stats(batch);
    // One shard per probe; only the consumed prefix reaches the profiler
    // and the super-tier selection profile.
    std::vector<BlockProfile> probe_profiles(collect_shards ? batch : 0);
    pool.ParallelFor(batch, [&](uint64_t k) {
      LogRunScope run_scope(static_cast<int64_t>(base + k));
      const Workload workload = WorkloadFor(base + k);
      VmOptions vm_options;
      vm_options.num_cores = options_.gist.num_cores;
      vm_options.max_steps = options_.max_steps_per_run;
      // All probes interpret from the server's shared pre-decoded cache.
      vm_options.decoded = server_.decoded().get();
      if (collect_shards) {
        vm_options.profile = &probe_profiles[k];
      }
      Vm vm(module_, workload, vm_options);
      const RunResult run = vm.Run();
      probe_stats[k] = run.stats;
      if (!run.ok() && run.failure.failing_instr != kNoInstr) {
        failures[k] = run.failure;
        GIST_LOG(kDebug) << "probe failed at instr " << run.failure.failing_instr;
      }
    });
    // Deterministic winner: the earliest failing run index, regardless of
    // which probe finished first. Later speculated probes are discarded.
    uint32_t winner = batch;
    for (uint32_t k = 0; k < batch; ++k) {
      if (failures[k].failing_instr != kNoInstr) {
        winner = k;
        break;
      }
    }
    // Recorder accounting covers the consumed prefix only: every batch size
    // eventually executes exactly probes 0..winner, so clock and counters
    // stay independent of the worker count; speculated probes past the
    // winner vanish unrecorded.
    const uint32_t probes_consumed = winner == batch ? batch : winner + 1;
    if (options_.campaign != nullptr) {
      // The tracker's virtual clock follows the recorder's discipline but is
      // independent of it: a campaign journal must not change because a
      // recorder happened to be attached too.
      for (uint32_t k = 0; k < probes_consumed; ++k) {
        options_.campaign->AdvanceClock(probe_stats[k].steps);
      }
    }
    if (recorder != nullptr) {
      for (uint32_t k = 0; k < probes_consumed; ++k) {
        const uint64_t begin = recorder->now();
        recorder->AdvanceClock(probe_stats[k].steps);
        recorder->metrics().Add("fleet.runs.probes");
        publisher->PublishVm(probe_stats[k]);
        const bool failing = failures[k].failing_instr != kNoInstr;
        recorder->AddSpan("probe", "phase1", begin, recorder->now(), FlightRecorder::kRunTrack,
                          {NumArg("run_index", base + k),
                           StrArg("outcome", failing ? "failing" : "ok")});
      }
    }
    if (profiler != nullptr) {
      // Same consumed-prefix discipline as the recorder: probes speculated
      // past the winner never reach the profile.
      for (uint32_t k = 0; k < probes_consumed; ++k) {
        profiler->AddRun(probe_profiles[k], MakeProfiledSample(probe_stats[k]));
      }
    }
    if (selection_profile != nullptr) {
      // The tier's selection input merges exactly the consumed prefix, so
      // which blocks fuse is a pure function of the fleet seed — never of
      // `jobs` or which speculated probe happened to finish.
      for (uint32_t k = 0; k < probes_consumed; ++k) {
        selection_profile->Merge(probe_profiles[k]);
      }
    }
    if (winner != batch) {
      result->first_failure_found = true;
      result->first_failure = failures[winner];
      *next_run_index = base + winner + 1;
      if (recorder != nullptr) {
        recorder->AddInstant("first_failure", "fleet", FlightRecorder::kControlTrack,
                             {NumArg("run_index", base + winner)});
      }
    }
    base += batch;
  }
}

FleetResult Fleet::Run(const RootCauseCheck& root_cause_check) {
  FleetResult result;
  std::optional<ThreadPool> owned_pool;
  if (options_.shared_pool == nullptr) {
    owned_pool.emplace(options_.jobs);
  }
  ThreadPool& pool = options_.shared_pool != nullptr ? *options_.shared_pool : *owned_pool;
  const uint32_t batch_size = BatchSize(pool);
  FlightRecorder* recorder = options_.recorder;
  HotPathProfiler* profiler = options_.profiler;
  if (profiler != nullptr && !profiler->attached()) {
    profiler->Attach(*server_.decoded(), options_.gist.title);
  }
  // Monitored runs collect per-run profile shards only when a profiler is
  // aggregating them.
  GistOptions gist_options = options_.gist;
  gist_options.collect_profile = profiler != nullptr;
  // Per-run metric names resolve to registry slots once, not once per run.
  std::optional<RunMetricsPublisher> publisher;
  if (recorder != nullptr) {
    publisher.emplace(&recorder->metrics());
  }

  // --- Phase 1: wait for the first failure in unmonitored production -------
  // Super-tier selection feeds on phase-1 hotness (the probes are the only
  // runs that exist before the plan does); probes themselves always execute
  // the fast path, since there is nothing fused yet.
  const bool needs_super =
      options_.gist.tier == ExecTier::kSuper || options_.tier_for_run != nullptr;
  BlockProfile selection_profile;
  uint64_t run_index = 0;
  FindFirstFailure(pool, &result, &run_index, needs_super ? &selection_profile : nullptr);
  if (!result.first_failure_found) {
    GIST_LOG(kWarning) << "fleet: no failure observed in production budget";
    return result;
  }
  server_.ReportFailure(result.first_failure);
  if (needs_super) {
    // Compile (or warm-start from the artifact store) the superinstruction
    // tier once; every snapshot below ships it to super-tier runs.
    server_.BuildFusedTier(selection_profile);
  }

  // --- Phase 2: AsT iterations ---------------------------------------------
  double overhead_sum = 0.0;
  uint64_t overhead_samples = 0;
  // Fused-tier activity over the consumed prefix. Tier-dependent by nature
  // (like cache stats), so it reaches the recorder only through the
  // annotation side channel at the end — never MetricsJson()/TraceJson().
  uint64_t fused_chains = 0;
  uint64_t fused_blocks = 0;
  uint64_t fused_retired = 0;
  const CostModel cost_model;

  for (uint32_t iteration = 0; iteration < options_.max_iterations; ++iteration) {
    FleetIterationStats stats;
    stats.iteration = iteration;
    stats.sigma = server_.sigma();
    const uint32_t recurrences_at_start = server_.failure_recurrences();
    const uint64_t iteration_begin = recorder != nullptr ? recorder->now() : 0;

    // Freeze: one immutable snapshot of (plan + watchpoint rotation).
    // Clients only ever see snapshots; when refinement below replans the
    // server mid-iteration, the merge loop discards the runs speculated
    // under the stale snapshot and re-freezes, so every consumed run
    // executed under the plan produced by all runs merged before it —
    // exactly the sequential contract, whatever the worker count.
    PlanSnapshot snapshot = server_.Snapshot();
    if (recorder != nullptr) {
      recorder->metrics().SetMax("fleet.watch.rotations",
                                 static_cast<int64_t>(snapshot.rotation_count()));
    }

    bool iteration_done = false;
    uint32_t client = 0;  // index within the iteration; selects the rotation
    uint32_t retries_used = 0;       // against FaultOptions::retry_budget_per_iteration
    uint32_t consecutive_losses = 0;  // drives the exponential backoff
    while (client < options_.runs_per_iteration && !iteration_done) {
      if (snapshot.version() != server_.plan_version()) {
        snapshot = server_.Snapshot();
        // Exactly one re-freeze per replan, whatever the batch size: the
        // merge loop below stops consuming at a version change, so control
        // always returns here before the next run executes.
        if (recorder != nullptr) {
          recorder->metrics().Add("fleet.refreezes");
          recorder->metrics().SetMax("fleet.watch.rotations",
                                     static_cast<int64_t>(snapshot.rotation_count()));
          recorder->AddInstant("refreeze", "fleet", FlightRecorder::kControlTrack,
                               {NumArg("version", server_.plan_version())});
        }
      }
      const uint32_t batch =
          std::min(batch_size, options_.runs_per_iteration - client);

      // Fan out: monitored runs are pure functions of (module, snapshot,
      // run_index), so the pool may execute them in any order. Client-side
      // faults (death, debug-register contention) are part of that function:
      // each run's FaultPlan derives from its run index alone.
      std::vector<MonitoredRun> runs(batch);
      pool.ParallelFor(batch, [&](uint64_t k) {
        const uint64_t index = run_index + k;
        LogRunScope run_scope(static_cast<int64_t>(index));
        RunDegradation degradation;
        if (options_.faults.enabled) {
          const FaultPlan fault = FaultPlan::ForRun(options_.faults, options_.fleet_seed, index);
          if (fault.kill_run) {
            degradation.kill_after_steps = fault.kill_after_steps;
          }
          if (fault.exhaust_watchpoints) {
            degradation.watchpoint_slots = fault.granted_watchpoint_slots;
          }
        }
        if (options_.tier_for_run != nullptr) {
          // Tier mixing: each run's tier is a pure function of its index,
          // like its workload and fault plan, so the mix is jobs-invariant.
          GistOptions per_run_options = gist_options;
          per_run_options.tier = options_.tier_for_run(index);
          runs[k] = RunMonitored(module_, snapshot, client + k, WorkloadFor(index),
                                 per_run_options, index + 1, options_.max_steps_per_run,
                                 degradation);
        } else {
          runs[k] = RunMonitored(module_, snapshot, client + k, WorkloadFor(index), gist_options,
                                 index + 1, options_.max_steps_per_run, degradation);
        }
        GIST_LOG(kDebug) << "monitored run done: " << runs[k].result.stats.steps << " steps, "
                         << (runs[k].trace.failed ? "failing" : "ok");
      });

      // Merge: traces enter the server in run-index order on this thread,
      // with exactly the sequential loop's early-exit checks after each one.
      // Runs speculated past the exit point are discarded before they touch
      // any accounting, so the consumed prefix — and with it the whole
      // FleetResult — is independent of batch size and worker count.
      uint32_t consumed = 0;
      for (uint32_t k = 0;
           k < batch && !iteration_done && snapshot.version() == server_.plan_version(); ++k) {
        MonitoredRun& run = runs[k];
        const uint64_t index = run_index + k;
        ++consumed;
        fused_chains += run.result.stats.fused_chains;
        fused_blocks += run.result.stats.fused_blocks;
        fused_retired += run.result.stats.fused_retired;

        // Flight recorder: the consumed run advances the virtual clock by
        // its retired instructions and publishes its client-side telemetry,
        // here on the coordinator thread in run-index order.
        uint64_t span_begin = 0;
        if (options_.campaign != nullptr) {
          options_.campaign->AdvanceClock(run.result.stats.steps);
        }
        if (recorder != nullptr) {
          span_begin = recorder->now();
          recorder->AdvanceClock(run.result.stats.steps);
          recorder->metrics().Add("fleet.runs.consumed");
          publisher->Publish(run);
        }
        if (profiler != nullptr) {
          // Every consumed run contributes its shard — lost and quarantined
          // runs included, exactly like the recorder's clock — so the merged
          // profile is a pure function of the consumed prefix.
          profiler->AddRun(run.profile, MakeProfiledSample(run));
        }
        auto record_run_span = [&](const char* outcome) {
          if (recorder != nullptr) {
            recorder->AddSpan("run", "fleet", span_begin, recorder->now(),
                              FlightRecorder::kRunTrack,
                              {NumArg("run_index", index),
                               NumArg("client", static_cast<uint64_t>(client) + k),
                               StrArg("outcome", outcome)});
          }
        };

        // Simulated production pacing + the run itself.
        result.sim_seconds += PacingSecondsFor(index);
        result.sim_seconds +=
            static_cast<double>(run.trace.baseline_instructions) / (options_.clock_ghz * 1e9);

        // Degradation (DESIGN.md §8): decide whether this run's trace ever
        // reaches the server. All decisions replay the run's FaultPlan, so
        // they are independent of worker count and batch boundaries.
        const FaultPlan fault =
            FaultPlan::ForRun(options_.faults, options_.fleet_seed, index);
        if (recorder != nullptr && fault.any()) {
          MetricsRegistry& metrics = recorder->metrics();
          if (fault.kill_run) metrics.Add("fleet.faults.injected.kill");
          if (fault.truncate_pt) metrics.Add("fleet.faults.injected.truncate_pt");
          if (fault.corrupt_pt) metrics.Add("fleet.faults.injected.corrupt_pt");
          if (fault.drop_wire) metrics.Add("fleet.faults.injected.drop_wire");
          if (fault.reorder_wire) metrics.Add("fleet.faults.injected.reorder_wire");
          if (fault.exhaust_watchpoints) metrics.Add("fleet.faults.injected.exhaust_watchpoints");
          if (fault.delay_result) metrics.Add("fleet.faults.injected.delay_result");
        }
        bool lost = run.result.killed;  // the client died; nothing was shipped
        double arrival_delay = 0.0;
        if (!lost && fault.delay_result) {
          if (fault.result_delay_seconds > options_.faults.result_timeout_seconds) {
            lost = true;  // the server stopped waiting
          } else {
            arrival_delay = fault.result_delay_seconds;
          }
        }
        std::vector<uint8_t> shipped_bytes;
        if (!lost) {
          // Client-side damage to the PT streams, then the trace travels
          // from client to server over the wire format, exactly as a
          // deployed fleet would ship it — anonymized first when the
          // deployment demands it.
          ApplyPtFaults(fault, &run.trace.pt_buffers);
          if (options_.anonymize_traces) {
            AnonymizeRunTrace(&run.trace);
          }
          shipped_bytes = SerializeRunTrace(run.trace);
          if (options_.faults.enabled) {
            // MTU chunking: a dropped chunk loses the upload; a reorder is
            // repaired by sequence numbers.
            std::vector<WireMessage> chunks =
                SplitWireMessages(shipped_bytes, options_.faults.wire_mtu_bytes);
            std::vector<WireMessage> delivered;
            for (uint32_t chunk :
                 DeliveredChunkOrder(fault, static_cast<uint32_t>(chunks.size()))) {
              delivered.push_back(std::move(chunks[chunk]));
            }
            Result<std::vector<uint8_t>> reassembled =
                ReassembleWireMessages(std::move(delivered));
            if (reassembled.ok()) {
              shipped_bytes = std::move(*reassembled);
            } else {
              lost = true;
            }
          }
        }

        if (lost) {
          // Retry with exponential backoff, up to the iteration budget: the
          // server re-requests a monitored run, which the loop's next index
          // supplies. Beyond the budget the loss is absorbed — statistics
          // renormalize over the runs that do arrive.
          ++stats.lost_runs;
          if (recorder != nullptr) {
            recorder->metrics().Add("fleet.runs.lost");
          }
          if (options_.faults.enabled &&
              retries_used < options_.faults.retry_budget_per_iteration) {
            const uint32_t exponent = std::min(consecutive_losses, 6u);
            result.sim_seconds +=
                options_.faults.retry_backoff_seconds * static_cast<double>(1u << exponent);
            ++retries_used;
            ++stats.retries;
            if (recorder != nullptr) {
              recorder->metrics().Add("fleet.retries");
              recorder->AddInstant("retry_backoff", "fleet", FlightRecorder::kControlTrack,
                                   {NumArg("run_index", index)});
            }
          }
          ++consecutive_losses;
          record_run_span("lost");
          continue;
        }
        consecutive_losses = 0;
        result.sim_seconds += arrival_delay;

        if (run.trace.baseline_instructions > 0) {
          overhead_sum += GistClientOverheadPercent(cost_model, run.trace.baseline_instructions,
                                                    run.trace.activity);
          ++overhead_samples;
        }
        const uint32_t recurrences_before = server_.failure_recurrences();
        Result<RunTrace> shipped = DeserializeRunTrace(shipped_bytes);
        GIST_CHECK(shipped.ok()) << shipped.error().message();
        const GistServer::TraceIngest ingest = server_.AddTrace(std::move(*shipped));
        if (ingest == GistServer::TraceIngest::kQuarantined) {
          ++stats.quarantined_runs;
          if (recorder != nullptr) {
            recorder->metrics().Add("fleet.runs.quarantined");
            recorder->AddInstant("quarantine", "fleet", FlightRecorder::kControlTrack,
                                 {NumArg("run_index", index)});
          }
          record_run_span("quarantined");
          continue;  // validation rejected the upload; it influences nothing
        }
        if (run.result.ok()) {
          ++stats.successful_runs;
          if (recorder != nullptr) {
            recorder->metrics().Add("fleet.runs.successful");
          }
          record_run_span("ok");
        } else {
          ++stats.failing_runs;
          if (recorder != nullptr) {
            recorder->metrics().Add("fleet.runs.failing");
          }
          record_run_span("failing");
        }
        if (recorder != nullptr && fault.any()) {
          // The run was struck by at least one injected fault and its trace
          // still reached the server intact.
          recorder->metrics().Add("fleet.faults.survived");
        }

        // A new recurrence of the target failure arrived: rebuild the sketch
        // and let the "developer" judge it. This is what Table 1 counts —
        // the number of failure recurrences consumed until the sketch is
        // good.
        if (server_.failure_recurrences() > recurrences_before) {
          Result<FailureSketch> sketch = server_.BuildSketch();
          if (sketch.ok()) {
            result.sketch = *sketch;
            const bool found = root_cause_check(*sketch);
            if (recorder != nullptr) {
              recorder->AddInstant("sketch_build", "fleet", FlightRecorder::kControlTrack,
                                   {NumArg("run_index", index),
                                    StrArg("root_cause", found ? "yes" : "no")});
            }
            if (found) {
              stats.root_cause_found = true;
              iteration_done = true;
              continue;
            }
          }
        }

        // Enough data at this σ: grow the window rather than re-observing.
        const uint32_t iteration_matching =
            server_.failure_recurrences() - recurrences_at_start;
        if (iteration_matching >= options_.min_matching_failures &&
            stats.successful_runs >= options_.min_successful_runs) {
          iteration_done = true;
        }
      }
      run_index += consumed;
      client += consumed;
    }

    stats.avg_overhead_percent =
        overhead_samples == 0 ? 0.0 : overhead_sum / static_cast<double>(overhead_samples);
    // Quorum (DESIGN.md §8): only runs that arrived AND passed validation
    // support the next AsT decision. When attrition leaves fewer than the
    // configured fraction of this iteration's runs standing, growing the
    // window would extrapolate from noise — re-monitor at the same σ.
    const uint32_t survivors = stats.successful_runs + stats.failing_runs;
    const uint32_t consumed_runs = survivors + stats.lost_runs + stats.quarantined_runs;
    stats.quorum_met =
        !options_.faults.enabled || consumed_runs == 0 ||
        static_cast<double>(survivors) >=
            options_.faults.quorum_fraction * static_cast<double>(consumed_runs);
    const bool saw_new_recurrence = server_.failure_recurrences() > recurrences_at_start;
    result.failure_recurrences = server_.failure_recurrences();
    result.lost_runs += stats.lost_runs;
    result.quarantined_runs += stats.quarantined_runs;
    result.retries += stats.retries;
    result.iterations.push_back(stats);
    if (options_.campaign != nullptr) {
      // One convergence sample per AsT iteration (DESIGN.md §14). Everything
      // here is a pure function of the consumed prefix: iteration tallies,
      // the server's campaign state, the latest sketch's statement sequence,
      // and the streaming statistics' predictor ranking.
      CampaignIterationSample sample;
      sample.iteration = stats.iteration;
      sample.sigma = stats.sigma;
      sample.virtual_end = options_.campaign->now();
      sample.failing_runs = stats.failing_runs;
      sample.successful_runs = stats.successful_runs;
      sample.lost_runs = stats.lost_runs;
      sample.quarantined_runs = stats.quarantined_runs;
      sample.retries = stats.retries;
      sample.quorum_met = stats.quorum_met;
      sample.root_cause_found = stats.root_cause_found;
      sample.recurrences = server_.failure_recurrences();
      sample.rotation_count = snapshot.rotation_count();
      sample.watch_instrs = static_cast<uint32_t>(server_.plan().watch_instrs.size());
      sample.watchpoint_slots = options_.gist.watchpoint_slots;
      const GistCampaignState state = server_.CampaignState();
      sample.slice_statements = state.slice_statements;
      sample.window_statements = state.window_statements;
      sample.slice_exhausted = state.slice_exhausted;
      for (const SketchStatement& statement : result.sketch.statements) {
        sample.sketch_statements.push_back(statement.instr);
      }
      const std::vector<ScoredPredictor> ranked = server_.behavior().stats().Ranked();
      const size_t top = std::min(ranked.size(), CampaignTracker::kRankWindow);
      for (size_t r = 0; r < top; ++r) {
        sample.top_predictors.push_back(PredictorToString(ranked[r].predictor, module_));
      }
      options_.campaign->RecordIteration(std::move(sample));
    }
    if (recorder != nullptr) {
      recorder->metrics().Add("fleet.iterations");
      recorder->AddSpan("iteration", "fleet", iteration_begin, recorder->now(),
                        FlightRecorder::kControlTrack,
                        {NumArg("iteration", static_cast<uint64_t>(iteration)),
                         NumArg("sigma", static_cast<uint64_t>(stats.sigma))});
    }

    if (stats.root_cause_found) {
      result.root_cause_found = true;
      break;
    }
    if (!saw_new_recurrence) {
      // The target failure did not recur within this iteration's budget:
      // growing the window without new data cannot help. Keep monitoring at
      // the same σ (the iteration still counts against max_iterations).
      continue;
    }
    if (!stats.quorum_met) {
      // Too few survivors to judge this σ; repeat it with the same plan.
      continue;
    }
    if (server_.ExhaustedSlice()) {
      break;  // the window already covers the whole slice
    }
    server_.AdvanceAst();
  }

  // Keep the last sketch even when no iteration satisfied the developer.
  if (!result.root_cause_found && server_.failure_recurrences() > 0) {
    Result<FailureSketch> sketch = server_.BuildSketch();
    if (sketch.ok()) {
      result.sketch = *sketch;
    }
  }

  result.failure_recurrences = server_.failure_recurrences();
  result.avg_overhead_percent =
      overhead_samples == 0 ? 0.0 : overhead_sum / static_cast<double>(overhead_samples);
  result.sigma_final = server_.sigma();
  if (profiler != nullptr && recorder != nullptr) {
    // The profile summary rides in the recorder snapshot ("profile."
    // namespace); the full histograms stay in the profiler's own exports.
    profiler->PublishSummary(&recorder->metrics());
  }
  if (recorder != nullptr) {
    // Fold in the server-side registry (ingest dispositions, PT decode,
    // AsT gauges, sketch statistics) — updated on this thread throughout, so
    // the combined snapshot inherits the fleet's determinism.
    recorder->metrics().Merge(server_.metrics());
  }
  if (recorder != nullptr && options_.gist.store != nullptr) {
    // Artifact-store stats go through the annotation side channel ONLY
    // (like wall-clock): hit/miss counts necessarily differ between warm
    // and cold campaigns, and MetricsJson()/TraceJson() must not
    // (DESIGN.md §11). Counts are cumulative over the store's lifetime.
    const StoreStats cache_stats = options_.gist.store->Snapshot();
    const ArtifactKindStats total = cache_stats.Total();
    for (size_t k = 0; k < kNumArtifactKinds; ++k) {
      const ArtifactKindStats& kind = cache_stats.kinds[k];
      const std::string name = ArtifactKindName(static_cast<ArtifactKind>(k));
      recorder->Annotate("cache.hits." + name, static_cast<double>(kind.hits()));
      recorder->Annotate("cache.misses." + name, static_cast<double>(kind.misses));
      recorder->Annotate("cache.evictions." + name, static_cast<double>(kind.evictions));
      recorder->Annotate("cache.bytes." + name, static_cast<double>(kind.bytes));
    }
    recorder->Annotate("cache.hits", static_cast<double>(total.hits()));
    recorder->Annotate("cache.misses", static_cast<double>(total.misses));
    recorder->Annotate("cache.evictions", static_cast<double>(total.evictions));
    recorder->Annotate("cache.bytes", static_cast<double>(total.bytes));
  }
  if (recorder != nullptr && server_.fused() != nullptr) {
    // Fused-tier telemetry is tier-dependent (a fast-tier fleet reports
    // zeros), so it rides the same annotation side channel as cache stats.
    const FusedTierStats& tier = server_.fused()->stats();
    recorder->Annotate("fused.blocks_selected", static_cast<double>(tier.fused_blocks));
    recorder->Annotate("fused.blocks_fusable", static_cast<double>(tier.fusable_blocks));
    recorder->Annotate("fused.block_fraction", tier.fused_block_fraction());
    recorder->Annotate("fused.chains", static_cast<double>(fused_chains));
    recorder->Annotate("fused.blocks_executed", static_cast<double>(fused_blocks));
    recorder->Annotate("fused.retired", static_cast<double>(fused_retired));
  }
  return result;
}

}  // namespace gist
