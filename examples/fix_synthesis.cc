// Sketch-guided fix synthesis (paper §6's CFix hook): diagnose the Memcached
// incr/decr atomicity violation with the full Gist loop, synthesize a
// lock-insertion fix from the sketch's top Fig. 5 pattern, and validate that
// the fixed server no longer loses updates.
//
// Build & run:   ./build/examples/fix_synthesis

#include <cstdio>

#include "src/apps/app.h"
#include "src/coop/fleet.h"
#include "src/ir/verifier.h"
#include "src/transform/fix_synthesis.h"

int main() {
  using namespace gist;

  auto app = MakeAppByName("memcached");
  std::printf("== Memcached bug #127: non-atomic incr ==\n\n");

  // 1. Diagnose with the cooperative fleet.
  FleetOptions options;
  options.fleet_seed = 2015;
  Fleet fleet(app->module(),
              [&](uint64_t ri, Rng& rng) { return app->MakeWorkload(ri, rng); }, options);
  const std::vector<InstrId>& root_cause = app->root_cause_instrs();
  FleetResult result = fleet.Run([&](const FailureSketch& sketch) {
    for (InstrId id : root_cause) {
      if (!sketch.Contains(id)) {
        return false;
      }
    }
    return true;
  });
  if (!result.root_cause_found) {
    std::fprintf(stderr, "diagnosis failed\n");
    return 1;
  }
  std::printf("Diagnosed in %u failure recurrences.\n", result.failure_recurrences);
  if (result.sketch.best_atomicity.has_value()) {
    std::printf("Top atomicity violation: %s\n\n",
                PredictorToString(result.sketch.best_atomicity->predictor,
                                  app->module()).c_str());
  }

  // 2. Synthesize the fix from the sketch.
  Result<SynthesizedFix> fix = SynthesizeAtomicityFix(app->module(), result.sketch);
  if (!fix.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n", fix.error().message().c_str());
    return 1;
  }
  std::printf("Synthesized fix: %s\n", fix->description.c_str());
  if (!VerifyModule(*fix->module).ok()) {
    std::fprintf(stderr, "fixed module does not verify\n");
    return 1;
  }

  // 3. Validate: the bug must be gone across production workloads.
  auto count_failures = [&](const Module& module) {
    Rng rng(1234);
    int failures = 0;
    for (int i = 0; i < 500; ++i) {
      Workload workload = app->MakeWorkload(static_cast<uint64_t>(i), rng);
      Vm vm(module, workload, VmOptions{});
      failures += vm.Run().ok() ? 0 : 1;
    }
    return failures;
  };
  const int before = count_failures(app->module());
  const int after = count_failures(*fix->module);
  std::printf("\nFailures across 500 production workloads: %d before fix, %d after fix.\n",
              before, after);
  if (after != 0 || before == 0) {
    std::fprintf(stderr, "validation failed\n");
    return 1;
  }
  std::printf("The dec-check window is now atomic — the lost-update assert never fires.\n");
  return 0;
}
