#include <gtest/gtest.h>

#include "src/hw/perf_model.h"
#include "src/hw/watchpoints.h"
#include "src/ir/parser.h"
#include "src/vm/vm.h"

namespace gist {
namespace {

TEST(WatchpointTest, FourSlotBudget) {
  WatchpointUnit unit;
  EXPECT_TRUE(unit.Arm(0x100));
  EXPECT_TRUE(unit.Arm(0x101));
  EXPECT_TRUE(unit.Arm(0x102));
  EXPECT_TRUE(unit.Arm(0x103));
  EXPECT_EQ(unit.active_count(), 4u);
  // Fifth distinct address fails — all debug registers busy.
  EXPECT_FALSE(unit.Arm(0x104));
  // Re-arming a watched address succeeds without consuming a slot.
  EXPECT_TRUE(unit.Arm(0x102));
  EXPECT_EQ(unit.active_count(), 4u);
}

TEST(WatchpointTest, ArmNullFails) {
  WatchpointUnit unit;
  EXPECT_FALSE(unit.Arm(kNullAddr));
}

TEST(WatchpointTest, DisarmFreesSlot) {
  WatchpointUnit unit;
  EXPECT_TRUE(unit.Arm(0x100));
  unit.Disarm(0x100);
  EXPECT_FALSE(unit.IsWatched(0x100));
  EXPECT_EQ(unit.active_count(), 0u);
  EXPECT_TRUE(unit.Arm(0x200));
}

TEST(WatchpointTest, DisarmAll) {
  WatchpointUnit unit;
  unit.Arm(0x1);
  unit.Arm(0x2);
  unit.DisarmAll();
  EXPECT_EQ(unit.active_count(), 0u);
}

TEST(WatchpointTest, ArmOperationsCounted) {
  WatchpointUnit unit;
  unit.Arm(0x1);
  unit.Arm(0x1);  // no-op, already armed
  unit.Arm(0x2);
  unit.Disarm(0x2);
  EXPECT_EQ(unit.arm_operations(), 3u);
}

TEST(WatchpointTest, WriteOnlyTriggerIgnoresReads) {
  auto module = ParseModule(R"(
global cell 1 5
func main() {
entry:
  r0 = addrof cell
  r1 = load r0
  r2 = const 9
  store r0, r2
  r3 = load r0
  ret
}
)");
  ASSERT_TRUE(module.ok());
  WatchpointUnit unit;
  Memory probe(**module);
  ASSERT_TRUE(unit.Arm(probe.GlobalAddr(0), WatchTrigger::kWriteOnly));
  VmOptions options;
  options.observers = {&unit};
  RunResult result = Vm(**module, Workload{}, options).Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(unit.events().size(), 1u);
  EXPECT_TRUE(unit.events()[0].is_write);
  EXPECT_EQ(unit.events()[0].value, 9);
}

TEST(WatchpointTest, RearmWidensWriteOnlyToReadWrite) {
  WatchpointUnit unit;
  ASSERT_TRUE(unit.Arm(0x100, WatchTrigger::kWriteOnly));
  ASSERT_TRUE(unit.Arm(0x100, WatchTrigger::kReadWrite));
  EXPECT_EQ(unit.active_count(), 1u);
  // A read must now trap.
  MemAccessEvent read{0, 1, 0, 5, 0x100, 7, false};
  unit.OnMemAccess(read);
  ASSERT_EQ(unit.events().size(), 1u);
  EXPECT_FALSE(unit.events()[0].is_write);
}

TEST(WatchpointTest, TrapsRecordValuesAndTotalOrder) {
  auto module = ParseModule(R"(
global cell 1 0
func w(1) {
entry:
  r1 = addrof cell
  r2 = load r1
  r3 = add r2, r0
  store r1, r3
  ret
}
func main() {
entry:
  r0 = const 5
  r1 = spawn @w(r0)
  r2 = const 7
  r3 = spawn @w(r2)
  join r1
  join r3
  ret
}
)");
  ASSERT_TRUE(module.ok());

  // Watch the global cell for the whole run.
  WatchpointUnit unit;
  Memory probe(**module);  // just to learn the global's address
  ASSERT_TRUE(unit.Arm(probe.GlobalAddr(0)));

  VmOptions options;
  options.observers = {&unit};
  Workload workload;
  workload.schedule_seed = 3;
  RunResult result = Vm(**module, workload, options).Run();
  ASSERT_TRUE(result.ok());

  // Two loads + two stores on the cell.
  ASSERT_EQ(unit.events().size(), 4u);
  // Sequence numbers strictly increase: a total order across threads.
  for (size_t i = 1; i < unit.events().size(); ++i) {
    EXPECT_GT(unit.events()[i].seq, unit.events()[i - 1].seq);
  }
  // Values: each store wrote load+operand.
  for (const WatchEvent& event : unit.events()) {
    EXPECT_EQ(event.addr, probe.GlobalAddr(0));
  }
}

TEST(WatchpointTest, UnwatchedAddressesDoNotTrap) {
  auto module = ParseModule(R"(
global a 1 0
global b 1 0
func main() {
entry:
  r0 = addrof a
  r1 = const 1
  store r0, r1
  r2 = addrof b
  store r2, r1
  ret
}
)");
  ASSERT_TRUE(module.ok());
  WatchpointUnit unit;
  Memory probe(**module);
  ASSERT_TRUE(unit.Arm(probe.GlobalAddr(1)));  // watch b only
  VmOptions options;
  options.observers = {&unit};
  RunResult result = Vm(**module, Workload{}, options).Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(unit.events().size(), 1u);
  EXPECT_EQ(unit.events()[0].addr, probe.GlobalAddr(1));
  EXPECT_TRUE(unit.events()[0].is_write);
  EXPECT_EQ(unit.events()[0].value, 1);
}

TEST(PerfModelTest, GistOverheadScalesWithActivity) {
  CostModel model;
  TracingActivity quiet;
  TracingActivity busy;
  busy.pt_bytes = 10'000;
  busy.pt_toggles = 50;
  busy.watch_traps = 100;
  busy.watch_arms = 8;
  const uint64_t instructions = 1'000'000;
  EXPECT_EQ(GistClientOverheadPercent(model, instructions, quiet), 0.0);
  EXPECT_GT(GistClientOverheadPercent(model, instructions, busy), 0.0);
}

TEST(PerfModelTest, OrderingOfMechanisms) {
  // For a typical profile, Gist < full PT < software PT < record/replay is
  // not quite the paper's ordering (rr and swPT swap by program); assert the
  // robust parts: Gist toggled tracing is far below full tracing, and both
  // software baselines are orders of magnitude above hardware PT.
  CostModel model;
  const uint64_t instructions = 1'000'000;
  const uint64_t branches = instructions / 6;
  const uint64_t mem = instructions / 4;
  // Full tracing generates ~1 TNT byte per ~6 branches (long TNT) plus sync
  // packets.
  const uint64_t pt_bytes = branches / 6 + 64;

  TracingActivity gist;
  gist.pt_bytes = pt_bytes / 100;  // slice-window tracing: ~1% of the run
  gist.pt_toggles = 40;
  gist.watch_traps = 60;
  gist.watch_arms = 4;

  const double gist_overhead = GistClientOverheadPercent(model, instructions, gist);
  const double pt_overhead = PtFullTraceOverheadPercent(model, instructions, pt_bytes);
  const double rr_overhead = RecordReplayOverheadPercent(model, instructions, mem);
  const double swpt_overhead = SoftwarePtOverheadPercent(model, instructions, branches);

  EXPECT_LT(gist_overhead, pt_overhead);
  EXPECT_LT(pt_overhead, 20.0);       // full PT stays near the paper's 11%
  EXPECT_GT(rr_overhead, 100.0);      // record/replay is many × slower
  EXPECT_GT(swpt_overhead, 100.0);    // software PT is many × slower
  EXPECT_GT(rr_overhead / pt_overhead, 10.0);
}

}  // namespace
}  // namespace gist
