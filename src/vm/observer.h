// Execution observer interface: the tap through which the simulated hardware
// (Intel PT, debug registers), the record/replay baselines, and the perf cost
// model watch a VM run. Callbacks fire synchronously in execution order on
// the (single-threaded, deterministic) interpreter loop.
//
// Dispatch is subscription-masked: each observer declares the event classes
// it consumes (SubscribedEvents), the VM builds per-event observer lists at
// Run() start, and events nobody subscribed to cost nothing — not even a
// virtual call. The two per-instruction-rate events (OnInstrRetired,
// OnMemAccess) are additionally batched for observers that opt in
// (AcceptsEventBatches): the VM buffers them per thread slice and delivers
// contiguous runs at the next non-batched event (block entry, branch,
// return, context switch, thread event, instrumentation-hook site), so the
// common case per retired instruction is a pointer bump instead of a
// virtual fan-out. See DESIGN.md §7 for the flush rules and why the
// determinism contract survives them.

#ifndef GIST_SRC_VM_OBSERVER_H_
#define GIST_SRC_VM_OBSERVER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/ir/ids.h"

namespace gist {

using CoreId = uint32_t;

// Event classes an ExecutionObserver can subscribe to. The VM only invokes
// callbacks whose class is in the observer's SubscribedEvents() mask; a
// handler outside the mask must be a no-op anyway (the default bodies are).
enum ObservedEvents : uint32_t {
  kEvContextSwitch = 1u << 0,   // OnContextSwitch
  kEvBlockEnter = 1u << 1,      // OnBlockEnter
  kEvBranch = 1u << 2,          // OnBranch
  kEvMemAccess = 1u << 3,       // OnMemAccess / OnMemAccessBatch
  kEvReturn = 1u << 4,          // OnReturn
  kEvInstrRetired = 1u << 5,    // OnInstrRetired / OnInstrRetiredBatch
  kEvThreadLifecycle = 1u << 6, // OnThreadStart / OnThreadExit
  kEvAll = (1u << 7) - 1,
};

// One dynamic shared-memory access (load or store), in global total order.
// `seq` increases by one per access across all threads — this is the order
// the hardware-watchpoint log preserves (paper §3.2.3).
struct MemAccessEvent {
  uint64_t seq;
  ThreadId tid;
  CoreId core;
  InstrId instr;
  Addr addr;
  Word value;  // value loaded (reads) or stored (writes)
  bool is_write;
};

// Inline instrumentation injected into the program (Gist's client-side
// patches). Unlike ExecutionObserver, hooks see the executing thread's
// register file, which is what the watchpoint-arming code needs: it computes
// the concrete address of a tracked access as soon as the address operand is
// defined (paper Fig. 4b: "before the access and after its immediate
// dominator").
class InstrumentationHook {
 public:
  virtual ~InstrumentationHook() = default;

  // Called before `instr` executes; `regs` is the current frame's registers.
  virtual void BeforeInstr(ThreadId tid, InstrId instr, const std::vector<Word>& regs) {
    (void)tid;
    (void)instr;
    (void)regs;
  }

  // Called after a value-producing, non-control instruction executed; `regs`
  // reflects the instruction's effect.
  virtual void AfterInstr(ThreadId tid, InstrId instr, const std::vector<Word>& regs) {
    (void)tid;
    (void)instr;
    (void)regs;
  }

  // Whether BeforeInstr/AfterInstr do anything at `instr`. The VM queries
  // this once per instruction id at Run() start and skips the hook calls (and
  // the batch flushes ordered around them) everywhere else, so a hook that
  // instruments a handful of sites costs nothing on the rest of the program.
  // The default keeps the historical call-everywhere behavior.
  virtual bool NeedsInstr(InstrId instr) const {
    (void)instr;
    return true;
  }
};

class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  // Event classes this observer consumes; the VM never dispatches outside the
  // mask. Defaults to everything so existing observers keep working; override
  // to shrink the hot-path fan-out (e.g. the PT tracer never needs
  // OnMemAccess, the watchpoint unit never needs OnBranch).
  virtual uint32_t SubscribedEvents() const { return kEvAll; }

  // Opt-in to batched delivery of the per-instruction-rate events. When true,
  // OnInstrRetired / OnMemAccess arrive via the *Batch entry points at flush
  // points instead of one virtual call per event. Batching preserves the
  // order within each event class and flushes before every non-batched event
  // and hook site, but relaxes the interleaving BETWEEN retired and
  // mem-access events inside one uninterrupted slice of straight-line code —
  // only opt in when the handlers for the two classes are independent (the
  // record/replay recorder, which logs a single interleaved stream, must
  // not).
  virtual bool AcceptsEventBatches() const { return false; }

  // Batched entry points; defaults unbatch so an observer can opt in without
  // implementing them. `events`/`instrs` are contiguous runs from a single
  // thread slice, in execution order.
  virtual void OnMemAccessBatch(const MemAccessEvent* events, std::size_t count) {
    for (size_t i = 0; i < count; ++i) {
      OnMemAccess(events[i]);
    }
  }
  virtual void OnInstrRetiredBatch(ThreadId tid, CoreId core, const InstrId* instrs,
                                   size_t count) {
    for (size_t i = 0; i < count; ++i) {
      OnInstrRetired(tid, core, instrs[i]);
    }
  }

  // A thread was scheduled onto a core, displacing `prev` (kNoThread at the
  // start of the run or after the previous occupant exited). The incoming
  // thread's code location is included so the simulated PT can emit a
  // flow-update (FUP) resync packet, as real PT does.
  virtual void OnContextSwitch(CoreId core, ThreadId prev, ThreadId next,
                               FunctionId next_function, BlockId next_block,
                               uint32_t next_index) {
    (void)core;
    (void)prev;
    (void)next;
    (void)next_function;
    (void)next_block;
    (void)next_index;
  }

  // Control enters a basic block.
  virtual void OnBlockEnter(ThreadId tid, CoreId core, FunctionId function, BlockId block) {
    (void)tid;
    (void)core;
    (void)function;
    (void)block;
  }

  // A conditional branch retired with the given outcome.
  virtual void OnBranch(ThreadId tid, CoreId core, InstrId instr, bool taken) {
    (void)tid;
    (void)core;
    (void)instr;
    (void)taken;
  }

  // A data access (load/store) retired.
  virtual void OnMemAccess(const MemAccessEvent& event) { (void)event; }

  // A `ret` retired. Returns are the IR's only indirect control transfers, so
  // the simulated PT needs the concrete target to emit a TIP packet. For the
  // final return of a thread (empty stack) `to_function` is kNoFunction.
  virtual void OnReturn(ThreadId tid, CoreId core, InstrId instr, FunctionId to_function,
                        BlockId to_block, uint32_t to_index) {
    (void)tid;
    (void)core;
    (void)instr;
    (void)to_function;
    (void)to_block;
    (void)to_index;
  }

  // Any instruction retired (fires after the more specific callbacks).
  virtual void OnInstrRetired(ThreadId tid, CoreId core, InstrId instr) {
    (void)tid;
    (void)core;
    (void)instr;
  }

  virtual void OnThreadStart(ThreadId tid) { (void)tid; }
  virtual void OnThreadExit(ThreadId tid) { (void)tid; }
};

}  // namespace gist

#endif  // GIST_SRC_VM_OBSERVER_H_
