// SQLite bug #1672: two threads sharing a connection race on the page-cache
// pointer — the owner publishes it and dereferences it shortly after, while
// the other thread's error path clears it in between (a WWR atomicity
// violation ending in a NULL dereference).

#include "src/apps/app.h"
#include "src/apps/app_util.h"

namespace gist {
namespace {

class SqliteApp : public BugAppBase {
 public:
  SqliteApp() {
    info_ = BugInfo{"sqlite", "SQLite", "3.3.3", "1672",
                    "Concurrency bug, segmentation fault", 47150};
    Build();
  }

  Workload MakeWorkload(uint64_t /*run_index*/, Rng& rng) const override {
    Workload workload;
    workload.schedule_seed = rng.NextU64();
    workload.inputs = {static_cast<Word>(rng.NextBelow(3)),
                       static_cast<Word>(rng.NextBelow(3)),
                       static_cast<Word>(20 + rng.NextBelow(30))};
    return workload;
  }

 private:
  void Build() {
    IrBuilder b(*module_);
    module_->CreateGlobal("pcache", 1, 0);
    scratch_ = module_->CreateGlobal("page_buffer", 1, 0);
    const FunctionId owner = BuildOwner(b);
    const FunctionId breaker = BuildBreaker(b);
    BuildMain(b, owner, breaker);
  }

  FunctionId BuildOwner(IrBuilder& b) {
    Function& f = b.StartFunction("sqlite3_step", 1);

    EmitInputScaledLoop(b, 2, 0, "prepare");

    b.Src(500, "db->pcache = pager_open();");
    const Reg one = b.Const(1);
    const Reg cache = b.Alloc(one);
    alloc_ = b.last_instr_id();
    const Reg pages = b.Const(64);
    b.Store(cache, pages);
    const Reg slot = b.AddrOfGlobal(0);
    b.Store(slot, cache);
    publish_store_ = b.last_instr_id();

    b.Src(502, "... run vdbe program ...");
    EmitBusyLoop(b, 2, "vdbe");

    b.Src(503, "n = db->pcache->nPage;");
    const Reg slot2 = b.AddrOfGlobal(0);
    reload_addr_ = b.last_instr_id();
    const Reg current = b.Load(slot2);
    reload_ = b.last_instr_id();
    const Reg n = b.Load(current);
    deref_ = b.last_instr_id();
    b.Print(n);
    b.Ret();
    return f.id();
  }

  FunctionId BuildBreaker(IrBuilder& b) {
    Function& f = b.StartFunction("sqlite3_close", 1);

    EmitInputScaledLoop(b, 3, 1, "teardown");

    b.Src(510, "db->pcache = 0;  /* error path clears shared cache */");
    const Reg slot = b.AddrOfGlobal(0);
    const Reg zero = b.Const(0);
    b.Store(slot, zero);
    clear_store_ = b.last_instr_id();
    b.Ret();
    return f.id();
  }

  void BuildMain(IrBuilder& b, FunctionId owner, FunctionId breaker) {
    b.StartFunction("main", 0);

    EmitInputScaledMemoryLoop(b, scratch_, 30, 2, "open_db");

    b.Src(520, "spawn both users of the shared connection;");
    const Reg zero = b.Const(0);
    const Reg t1 = b.ThreadCreate(owner, zero);
    spawn_owner_ = b.last_instr_id();
    const Reg t2 = b.ThreadCreate(breaker, zero);
    spawn_breaker_ = b.last_instr_id();
    b.ThreadJoin(t1);
    b.ThreadJoin(t2);
    b.Ret();

    // spawn_breaker_ has no dependence path to the owner's dereference; it
    // can never enter a Gist sketch and models the paper's sub-100%%
    // relevance cases.
    ideal_.instrs = {spawn_owner_, spawn_breaker_, publish_store_, clear_store_,
                     reload_addr_, reload_, deref_};
    // Failing interleaving: owner publishes, closer clears, owner reloads.
    ideal_.access_order = {publish_store_, clear_store_, reload_};
    root_cause_ = {spawn_owner_, publish_store_, clear_store_, reload_};
  }

  GlobalId scratch_ = 0;
  InstrId reload_addr_ = kNoInstr;
  InstrId spawn_owner_ = kNoInstr;
  InstrId spawn_breaker_ = kNoInstr;
  InstrId alloc_ = kNoInstr;
  InstrId publish_store_ = kNoInstr;
  InstrId clear_store_ = kNoInstr;
  InstrId reload_ = kNoInstr;
  InstrId deref_ = kNoInstr;
};

}  // namespace

std::unique_ptr<BugApp> MakeSqliteApp() { return std::make_unique<SqliteApp>(); }

}  // namespace gist
