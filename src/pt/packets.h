// Simulated Intel Processor Trace packet stream.
//
// The packet vocabulary mirrors the real Intel PT packets Gist relies on
// (paper §3.2.2): PSB sync points, TIP.PGE/TIP.PGD tracing-enable/disable
// with an IP payload, TIP for indirect transfers (returns), PIP for context
// switches (CR3 analog carrying the scheduled thread id), TNT for compressed
// conditional-branch outcomes (up to 6 per two-byte packet), and OVF when the
// trace buffer fills. "IP" payloads are synthetic code locations packed as
// (function, block, index).
//
// Byte layout (little-endian payloads):
//   0x00                 PAD
//   0x10 + 15×0x82       PSB
//   0x20 + 8-byte ip     TIP.PGE   (tracing starts at ip)
//   0x21 + 8-byte ip     TIP.PGD   (tracing stops after ip)
//   0x22 + 8-byte ip     TIP       (indirect transfer to ip; kEndIp = thread end)
//   0x23 + 4-byte tid    PIP       (context switch to tid)
//   0x24 + 8-byte ip     FUP       (flow update: resync location of the
//                                   incoming thread after a context switch)
//   0x30|n + 1 byte      TNT       (short: n ∈ [1,6] branch bits, LSB first)
//   0x38 + count + 6B    TNT.LONG  (up to 47 branch bits, LSB first)
//   0x40                 OVF

#ifndef GIST_SRC_PT_PACKETS_H_
#define GIST_SRC_PT_PACKETS_H_

#include <cstdint>
#include <vector>

#include "src/ir/ids.h"
#include "src/support/result.h"

namespace gist {

// Synthetic instruction pointer: a code location in the module.
struct PtIp {
  FunctionId function = kNoFunction;
  BlockId block = kNoBlock;
  uint32_t index = 0;

  bool operator==(const PtIp&) const = default;
};

// Sentinel TIP payload marking "thread finished" (no return target).
PtIp PtEndIp();
bool IsPtEndIp(const PtIp& ip);

uint64_t PackPtIp(const PtIp& ip);
PtIp UnpackPtIp(uint64_t packed);

enum class PtPacketKind : uint8_t {
  kPad,
  kPsb,
  kPge,
  kPgd,
  kTip,
  kPip,
  kFup,
  kTnt,
  kOvf,
};

// A decoded packet (used by the stream decoder and tests).
struct PtPacket {
  PtPacketKind kind = PtPacketKind::kPad;
  PtIp ip;                 // kPge / kPgd / kTip
  ThreadId tid = kNoThread;  // kPip
  uint64_t tnt_bits = 0;   // kTnt, LSB first
  uint8_t tnt_count = 0;   // kTnt: 1..6 (short) or up to kLongTntBits (long)
};

inline constexpr uint8_t kLongTntBits = 47;

// Fixed-capacity trace buffer (the paper's driver uses a 2 MB buffer). Once
// full, the buffer records an OVF marker and drops further packets; the
// number of dropped bytes is still accounted so bandwidth stats stay honest.
class PtBuffer {
 public:
  explicit PtBuffer(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  void AppendPsb();
  void AppendPge(const PtIp& ip);
  void AppendPgd(const PtIp& ip);
  void AppendTip(const PtIp& ip);
  void AppendPip(ThreadId tid);
  void AppendFup(const PtIp& ip);
  void AppendTnt(uint8_t bits, uint8_t count);
  // Long TNT: up to kLongTntBits outcomes in one 8-byte packet (real PT's
  // long TNT carries 47 bits); the encoder batches branches into these.
  void AppendLongTnt(uint64_t bits, uint8_t count);
  void Clear();

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  bool overflowed() const { return overflowed_; }
  // All bytes generated, including those dropped after overflow.
  uint64_t bytes_generated() const { return bytes_generated_; }
  size_t capacity() const { return capacity_; }

 private:
  void Append(const uint8_t* data, size_t size);

  size_t capacity_;
  std::vector<uint8_t> bytes_;
  bool overflowed_ = false;
  uint64_t bytes_generated_ = 0;
};

// Parses the next packet at `offset`; advances `offset` past it. Returns an
// error on malformed input (truncated payload, unknown header).
Result<PtPacket> ReadPtPacket(const std::vector<uint8_t>& bytes, size_t* offset);

}  // namespace gist

#endif  // GIST_SRC_PT_PACKETS_H_
