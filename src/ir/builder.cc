#include "src/ir/builder.h"

namespace gist {

Function& IrBuilder::StartFunction(const std::string& name, uint32_t num_params) {
  function_ = &module_.CreateFunction(name, num_params);
  block_ = &function_->CreateBlock("entry");
  src_line_ = 0;
  src_text_.clear();
  return *function_;
}

BasicBlock& IrBuilder::NewBlock(const std::string& label) {
  return current_function().CreateBlock(label);
}

void IrBuilder::Src(uint32_t line, const std::string& text) {
  src_line_ = line;
  src_text_ = text;
}

InstrId IrBuilder::EmitCopy(const Instruction& instr) {
  GIST_CHECK(function_ != nullptr && block_ != nullptr) << "builder has no insertion point";
  GIST_CHECK(!block_->HasTerminator())
      << "appending to already-terminated block ^" << block_->id();
  Instruction copy = instr;  // keeps loc, operands, targets, callee
  copy.id = module_.NextInstrId(InstrLocation{function_->id(), block_->id(),
                                              static_cast<uint32_t>(block_->size())});
  last_id_ = copy.id;
  block_->mutable_instructions().push_back(std::move(copy));
  return last_id_;
}

Instruction& IrBuilder::Emit(Instruction instr) {
  GIST_CHECK(function_ != nullptr && block_ != nullptr) << "builder has no insertion point";
  GIST_CHECK(!block_->HasTerminator())
      << "appending to already-terminated block ^" << block_->id();
  instr.loc = SourceLoc{function_->name(), src_line_, src_text_};
  instr.id = module_.NextInstrId(InstrLocation{function_->id(), block_->id(),
                                               static_cast<uint32_t>(block_->size())});
  last_id_ = instr.id;
  block_->mutable_instructions().push_back(std::move(instr));
  return block_->mutable_instructions().back();
}

Reg IrBuilder::Const(int64_t value) {
  Instruction instr;
  instr.op = Opcode::kConst;
  instr.dst = current_function().NewReg();
  instr.imm = value;
  return Emit(std::move(instr)).dst;
}

Reg IrBuilder::Move(Reg src) {
  Instruction instr;
  instr.op = Opcode::kMove;
  instr.dst = current_function().NewReg();
  instr.operands = {src};
  return Emit(std::move(instr)).dst;
}

Reg IrBuilder::Binary(BinOp op, Reg lhs, Reg rhs) {
  Instruction instr;
  instr.op = Opcode::kBinOp;
  instr.binop = op;
  instr.dst = current_function().NewReg();
  instr.operands = {lhs, rhs};
  return Emit(std::move(instr)).dst;
}

Reg IrBuilder::Not(Reg value) {
  Instruction instr;
  instr.op = Opcode::kNot;
  instr.dst = current_function().NewReg();
  instr.operands = {value};
  return Emit(std::move(instr)).dst;
}

Reg IrBuilder::Load(Reg addr) {
  Instruction instr;
  instr.op = Opcode::kLoad;
  instr.dst = current_function().NewReg();
  instr.operands = {addr};
  return Emit(std::move(instr)).dst;
}

Reg IrBuilder::AddrOfGlobal(GlobalId global, int64_t offset_words) {
  Instruction instr;
  instr.op = Opcode::kAddrOfGlobal;
  instr.dst = current_function().NewReg();
  instr.global = global;
  instr.imm = offset_words;
  return Emit(std::move(instr)).dst;
}

Reg IrBuilder::Gep(Reg base, Reg offset) {
  Instruction instr;
  instr.op = Opcode::kGep;
  instr.dst = current_function().NewReg();
  instr.operands = {base, offset};
  return Emit(std::move(instr)).dst;
}

Reg IrBuilder::GepConst(Reg base, int64_t offset_words) {
  const Reg offset = Const(offset_words);
  return Gep(base, offset);
}

Reg IrBuilder::Alloc(Reg size_words) {
  Instruction instr;
  instr.op = Opcode::kAlloc;
  instr.dst = current_function().NewReg();
  instr.operands = {size_words};
  return Emit(std::move(instr)).dst;
}

Reg IrBuilder::AllocConst(int64_t size_words) {
  const Reg size = Const(size_words);
  return Alloc(size);
}

Reg IrBuilder::Call(FunctionId callee, std::initializer_list<Reg> args) {
  Instruction instr;
  instr.op = Opcode::kCall;
  instr.dst = current_function().NewReg();
  instr.callee = callee;
  instr.operands.assign(args);
  return Emit(std::move(instr)).dst;
}

Reg IrBuilder::ThreadCreate(FunctionId callee, Reg arg) {
  Instruction instr;
  instr.op = Opcode::kThreadCreate;
  instr.dst = current_function().NewReg();
  instr.callee = callee;
  instr.operands = {arg};
  return Emit(std::move(instr)).dst;
}

Reg IrBuilder::Input(int64_t index) {
  Instruction instr;
  instr.op = Opcode::kInput;
  instr.dst = current_function().NewReg();
  instr.imm = index;
  return Emit(std::move(instr)).dst;
}

void IrBuilder::AssignConst(Reg dst, int64_t value) {
  Instruction instr;
  instr.op = Opcode::kConst;
  instr.dst = dst;
  instr.imm = value;
  Emit(std::move(instr));
}

void IrBuilder::AssignMove(Reg dst, Reg src) {
  Instruction instr;
  instr.op = Opcode::kMove;
  instr.dst = dst;
  instr.operands = {src};
  Emit(std::move(instr));
}

void IrBuilder::AssignBinary(Reg dst, BinOp op, Reg lhs, Reg rhs) {
  Instruction instr;
  instr.op = Opcode::kBinOp;
  instr.binop = op;
  instr.dst = dst;
  instr.operands = {lhs, rhs};
  Emit(std::move(instr));
}

void IrBuilder::AssignLoad(Reg dst, Reg addr) {
  Instruction instr;
  instr.op = Opcode::kLoad;
  instr.dst = dst;
  instr.operands = {addr};
  Emit(std::move(instr));
}

void IrBuilder::Store(Reg addr, Reg value) {
  Instruction instr;
  instr.op = Opcode::kStore;
  instr.operands = {addr, value};
  Emit(std::move(instr));
}

void IrBuilder::Free(Reg addr) {
  Instruction instr;
  instr.op = Opcode::kFree;
  instr.operands = {addr};
  Emit(std::move(instr));
}

void IrBuilder::CallVoid(FunctionId callee, std::initializer_list<Reg> args) {
  Instruction instr;
  instr.op = Opcode::kCall;
  instr.callee = callee;
  instr.operands.assign(args);
  Emit(std::move(instr));
}

void IrBuilder::Ret() {
  Instruction instr;
  instr.op = Opcode::kRet;
  Emit(std::move(instr));
}

void IrBuilder::Ret(Reg value) {
  Instruction instr;
  instr.op = Opcode::kRet;
  instr.operands = {value};
  Emit(std::move(instr));
}

void IrBuilder::Br(Reg cond, BlockId if_true, BlockId if_false) {
  Instruction instr;
  instr.op = Opcode::kBr;
  instr.operands = {cond};
  instr.target0 = if_true;
  instr.target1 = if_false;
  Emit(std::move(instr));
}

void IrBuilder::Jmp(BlockId target) {
  Instruction instr;
  instr.op = Opcode::kJmp;
  instr.target0 = target;
  Emit(std::move(instr));
}

void IrBuilder::Assert(Reg cond, const std::string& message) {
  Instruction instr;
  instr.op = Opcode::kAssert;
  instr.operands = {cond};
  instr.text = message;
  Emit(std::move(instr));
}

void IrBuilder::ThreadJoin(Reg tid) {
  Instruction instr;
  instr.op = Opcode::kThreadJoin;
  instr.operands = {tid};
  Emit(std::move(instr));
}

void IrBuilder::Lock(Reg addr) {
  Instruction instr;
  instr.op = Opcode::kLock;
  instr.operands = {addr};
  Emit(std::move(instr));
}

void IrBuilder::Unlock(Reg addr) {
  Instruction instr;
  instr.op = Opcode::kUnlock;
  instr.operands = {addr};
  Emit(std::move(instr));
}

void IrBuilder::Print(Reg value) {
  Instruction instr;
  instr.op = Opcode::kPrint;
  instr.operands = {value};
  Emit(std::move(instr));
}

void IrBuilder::Nop() {
  Instruction instr;
  instr.op = Opcode::kNop;
  Emit(std::move(instr));
}

}  // namespace gist
