// Unit contract of the failure-corpus generator (DESIGN.md §13):
//   1. generation is a pure function of (seed, index) — the same seed yields
//      byte-identical `.gir` text and manifest JSON, and any subset of a
//      corpus regenerates identically to the full sweep;
//   2. a default corpus covers every bug family, round-robin in enum order;
//   3. every generated manifest validates against its own module, and the
//      validator actually rejects broken manifests;
//   4. the on-disk layout round-trips: WriteCorpusDir then LoadCorpusIndex
//      reproduces the generation options, and the emitted `.gir` re-parses.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/manifest.h"
#include "src/ir/parser.h"

namespace gist {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CorpusTest, SameSeedIsByteDeterministic) {
  CorpusOptions options;
  options.seed = 2015;
  options.count = 7;
  const std::vector<GeneratedProgram> a = GenerateCorpus(options);
  const std::vector<GeneratedProgram> b = GenerateCorpus(options);
  ASSERT_EQ(a.size(), 7u);
  ASSERT_EQ(b.size(), 7u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].module->ToString(), b[i].module->ToString()) << "program " << i;
    EXPECT_EQ(a[i].manifest.ToJson(), b[i].manifest.ToJson()) << "program " << i;
  }
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  CorpusOptions options;
  options.count = 7;
  options.seed = 2015;
  const std::vector<GeneratedProgram> a = GenerateCorpus(options);
  options.seed = 2016;
  const std::vector<GeneratedProgram> b = GenerateCorpus(options);
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_difference |= a[i].module->ToString() != b[i].module->ToString();
  }
  EXPECT_TRUE(any_difference);
}

// Any subset of a corpus regenerates identically: program #i depends only on
// (seed, i), never on how many neighbors were generated around it.
TEST(CorpusTest, SubsetRegeneratesIdentically) {
  CorpusOptions small;
  small.seed = 99;
  small.count = 7;
  CorpusOptions large = small;
  large.count = 21;
  const std::vector<GeneratedProgram> a = GenerateCorpus(small);
  const std::vector<GeneratedProgram> b = GenerateCorpus(large);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].module->ToString(), b[i].module->ToString()) << "program " << i;
    EXPECT_EQ(a[i].manifest.ToJson(), b[i].manifest.ToJson()) << "program " << i;
  }
  // And a single standalone regeneration matches too (the scorer relies on
  // this to byte-verify on-disk corpora).
  const GeneratedProgram lone = GenerateProgram(
      a[3].manifest.family, CorpusProgramSeed(small.seed, 3), a[3].manifest.name, 3);
  EXPECT_EQ(lone.module->ToString(), a[3].module->ToString());
  EXPECT_EQ(lone.manifest.ToJson(), a[3].manifest.ToJson());
}

TEST(CorpusTest, DefaultCorpusCoversEveryFamilyInOrder) {
  CorpusOptions options;
  options.seed = 7;
  options.count = static_cast<uint32_t>(kNumBugFamilies);
  const std::vector<GeneratedProgram> programs = GenerateCorpus(options);
  ASSERT_EQ(programs.size(), kNumBugFamilies);
  for (size_t i = 0; i < programs.size(); ++i) {
    EXPECT_EQ(programs[i].manifest.family, static_cast<BugFamily>(i));
    EXPECT_EQ(programs[i].manifest.name,
              CorpusProgramName(static_cast<uint32_t>(i), static_cast<BugFamily>(i)));
  }
}

TEST(CorpusTest, FamilyNamesRoundTrip) {
  for (size_t i = 0; i < kNumBugFamilies; ++i) {
    const BugFamily family = static_cast<BugFamily>(i);
    BugFamily parsed;
    ASSERT_TRUE(ParseBugFamily(BugFamilyName(family), &parsed)) << BugFamilyName(family);
    EXPECT_EQ(parsed, family);
  }
  BugFamily ignored;
  EXPECT_FALSE(ParseBugFamily("heisenbug", &ignored));
}

TEST(CorpusTest, GeneratedManifestsValidateAndBrokenOnesDoNot) {
  CorpusOptions options;
  options.seed = 31;
  options.count = 14;  // two of each family, varied params
  const std::vector<GeneratedProgram> programs = GenerateCorpus(options);
  for (const GeneratedProgram& program : programs) {
    EXPECT_EQ(ValidateManifest(program.manifest, *program.module), "")
        << program.manifest.name;
    EXPECT_NE(program.manifest.ToJson().find("gist.manifest.v1"), std::string::npos);
    // The planted failure's statements are part of the graded ground truth.
    EXPECT_FALSE(program.manifest.root_cause.empty());
    EXPECT_FALSE(program.manifest.ideal.instrs.empty());
  }
  // The validator is not a rubber stamp: an out-of-range failing PC fails.
  CorpusManifest broken = programs[0].manifest;
  broken.failing_instr = InstrId{1u << 20};
  EXPECT_NE(ValidateManifest(broken, *programs[0].module), "");
}

TEST(CorpusTest, EmittedGirReparses) {
  CorpusOptions options;
  options.seed = 2015;
  options.count = 7;
  const std::vector<GeneratedProgram> programs = GenerateCorpus(options);
  for (const GeneratedProgram& program : programs) {
    const std::string text = program.module->ToString();
    auto parsed = ParseModule(text);
    ASSERT_TRUE(parsed.ok()) << program.manifest.name << ": " << parsed.error().message();
    EXPECT_EQ((*parsed)->ToString(), text) << program.manifest.name;
  }
}

TEST(CorpusTest, WriteAndLoadRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "gist_corpus_rt";
  std::filesystem::remove_all(dir);

  CorpusOptions options;
  options.seed = 4242;
  options.count = 7;
  const std::vector<GeneratedProgram> programs = GenerateCorpus(options);
  std::string error;
  ASSERT_TRUE(WriteCorpusDir(dir.string(), programs, options, &error)) << error;

  CorpusOptions loaded;
  ASSERT_TRUE(LoadCorpusIndex(dir.string(), &loaded, &error)) << error;
  EXPECT_EQ(loaded.seed, options.seed);
  EXPECT_EQ(loaded.count, options.count);

  // On-disk artifacts are the canonical bytes, not approximations.
  for (const GeneratedProgram& program : programs) {
    EXPECT_EQ(ReadFile(dir / (program.manifest.name + ".gir")),
              program.module->ToString());
    EXPECT_EQ(ReadFile(dir / (program.manifest.name + ".manifest.json")),
              program.manifest.ToJson());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gist
