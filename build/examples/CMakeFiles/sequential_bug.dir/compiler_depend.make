# Empty compiler generated dependencies file for sequential_bug.
# This may be replaced when dependencies are built.
