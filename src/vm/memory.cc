#include "src/vm/memory.h"

namespace gist {

FailureType MemFaultToFailure(MemFault fault) {
  switch (fault) {
    case MemFault::kOk:
      return FailureType::kNone;
    case MemFault::kNullDeref:
    case MemFault::kUnmapped:
      return FailureType::kSegFault;
    case MemFault::kUseAfterFree:
      return FailureType::kUseAfterFree;
    case MemFault::kDoubleFree:
      return FailureType::kDoubleFree;
    case MemFault::kInvalidFree:
      return FailureType::kInvalidFree;
  }
  return FailureType::kNone;
}

Addr StaticGlobalAddr(const Module& module, GlobalId id) {
  GIST_CHECK_LT(id, module.num_globals());
  Addr addr = kGlobalsBase;
  for (GlobalId g = 0; g < id; ++g) {
    addr += module.global(g).size_words;
  }
  return addr;
}

Memory::Memory(const Module& module) {
  Addr next = kGlobalsBase;
  for (GlobalId g = 0; g < module.num_globals(); ++g) {
    const GlobalVar& global = module.global(g);
    GIST_CHECK_EQ(next, StaticGlobalAddr(module, g));
    global_addrs_.push_back(next);
    for (uint64_t i = 0; i < global.size_words; ++i) {
      words_[next + i] = global.initial_value;
    }
    next += global.size_words;
  }
  globals_end_ = next;
}

Addr Memory::GlobalAddr(GlobalId id) const {
  GIST_CHECK_LT(id, global_addrs_.size());
  return global_addrs_[id];
}

const Memory::HeapBlock* Memory::FindBlock(Addr addr, Addr* base) const {
  auto it = heap_blocks_.upper_bound(addr);
  if (it == heap_blocks_.begin()) {
    return nullptr;
  }
  --it;
  if (addr < it->first + it->second.size_words) {
    *base = it->first;
    return &it->second;
  }
  return nullptr;
}

MemFault Memory::Check(Addr addr) const {
  if (addr == kNullAddr) {
    return MemFault::kNullDeref;
  }
  if (addr >= kGlobalsBase && addr < globals_end_) {
    return MemFault::kOk;
  }
  Addr base;
  const HeapBlock* block = FindBlock(addr, &base);
  if (block == nullptr) {
    return MemFault::kUnmapped;
  }
  return block->live ? MemFault::kOk : MemFault::kUseAfterFree;
}

MemFault Memory::Read(Addr addr, Word* out) const {
  const MemFault fault = Check(addr);
  if (fault != MemFault::kOk) {
    return fault;
  }
  auto it = words_.find(addr);
  *out = it == words_.end() ? 0 : it->second;
  return MemFault::kOk;
}

MemFault Memory::Write(Addr addr, Word value) {
  const MemFault fault = Check(addr);
  if (fault != MemFault::kOk) {
    return fault;
  }
  words_[addr] = value;
  return MemFault::kOk;
}

Addr Memory::Alloc(uint64_t size_words) {
  GIST_CHECK_GT(size_words, 0u);
  const Addr base = heap_next_;
  heap_next_ += size_words + 1;  // +1 guard word so adjacent blocks never touch
  heap_blocks_[base] = HeapBlock{size_words, /*live=*/true};
  for (uint64_t i = 0; i < size_words; ++i) {
    words_[base + i] = 0;
  }
  words_allocated_ += size_words;
  return base;
}

MemFault Memory::Free(Addr addr) {
  if (addr == kNullAddr) {
    return MemFault::kNullDeref;
  }
  auto it = heap_blocks_.find(addr);
  if (it == heap_blocks_.end()) {
    return MemFault::kInvalidFree;
  }
  if (!it->second.live) {
    return MemFault::kDoubleFree;
  }
  it->second.live = false;
  return MemFault::kOk;
}

}  // namespace gist
