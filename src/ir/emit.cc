#include "src/ir/emit.h"

namespace gist {

void EmitWorkLoop(IrBuilder& b, Reg bound, const std::string& label_prefix, GlobalId scratch,
                  bool memory_traffic) {
  b.Src(0, "");  // loop scaffolding carries no pseudo-source line
  BasicBlock& head = b.NewBlock(label_prefix + "_head");
  BasicBlock& body = b.NewBlock(label_prefix + "_body");
  BasicBlock& done = b.NewBlock(label_prefix + "_done");

  const Reg i = b.Const(0);
  const Reg one = b.Const(1);
  const Reg seed = b.Const(0x9e37);
  const Reg acc = b.Move(seed);
  b.Jmp(head.id());

  b.SetInsertBlock(head);
  const Reg more = b.Lt(i, bound);
  b.Br(more, body.id(), done.id());

  b.SetInsertBlock(body);
  // A little arithmetic so the loop is not empty.
  b.AssignBinary(acc, BinOp::kXor, acc, i);
  b.AssignBinary(acc, BinOp::kAdd, acc, seed);
  b.AssignBinary(acc, BinOp::kShl, acc, one);
  if (memory_traffic) {
    const Reg scratch_addr = b.AddrOfGlobal(scratch);
    const Reg loaded = b.Load(scratch_addr);
    const Reg mixed = b.Add(loaded, i);
    b.Store(scratch_addr, mixed);
  }
  b.AssignBinary(i, BinOp::kAdd, i, one);
  b.Jmp(head.id());

  b.SetInsertBlock(done);
}

void EmitBusyLoop(IrBuilder& b, int64_t iterations, const std::string& label_prefix) {
  const Reg bound = b.Const(iterations);
  EmitWorkLoop(b, bound, label_prefix);
}

void EmitInputScaledLoop(IrBuilder& b, int64_t base, int64_t input_index,
                         const std::string& label_prefix) {
  const Reg base_reg = b.Const(base);
  const Reg extra = b.Input(input_index);
  const Reg bound = b.Add(base_reg, extra);
  EmitWorkLoop(b, bound, label_prefix);
}

void EmitInputScaledMemoryLoop(IrBuilder& b, GlobalId scratch, int64_t base, int64_t input_index,
                               const std::string& label_prefix) {
  const Reg base_reg = b.Const(base);
  const Reg extra = b.Input(input_index);
  const Reg bound = b.Add(base_reg, extra);
  EmitWorkLoop(b, bound, label_prefix, scratch, /*memory_traffic=*/true);
}

}  // namespace gist
