#include "src/vm/vm.h"

#include <algorithm>

#include "src/support/str.h"

namespace gist {

Vm::Vm(const Module& module, Workload workload, VmOptions options)
    : module_(module),
      workload_(std::move(workload)),
      options_(std::move(options)),
      memory_(module),
      rng_(workload_.schedule_seed) {
  GIST_CHECK_GT(options_.num_cores, 0u);
  core_occupant_.assign(options_.num_cores, kNoThread);
  threads_.reserve(kMaxThreads);
}

ThreadId Vm::SpawnThread(FunctionId function, const std::vector<Word>& args, bool is_main) {
  GIST_CHECK_LT(threads_.size(), kMaxThreads) << "thread limit exceeded";
  const ThreadId tid = static_cast<ThreadId>(threads_.size());
  ThreadState thread;
  thread.id = tid;
  thread.core = tid % options_.num_cores;
  Frame frame;
  frame.function = function;
  frame.regs.assign(module_.function(function).num_regs(), 0);
  for (size_t i = 0; i < args.size() && i < frame.regs.size(); ++i) {
    frame.regs[i] = args[i];
  }
  thread.stack.push_back(std::move(frame));
  threads_.push_back(std::move(thread));
  ++result_.stats.threads_created;
  if (!is_main) {
    ForObservers([&](ExecutionObserver& o) { o.OnThreadStart(tid); });
  }
  return tid;
}

void Vm::RaiseFailure(ThreadState& thread, FailureType type, InstrId instr,
                      const std::string& message) {
  result_.failure.type = type;
  result_.failure.failing_instr = instr;
  result_.failure.failing_thread = thread.id;
  result_.failure.message = message;
  result_.failure.stack_trace = StackTrace(thread, instr);
  done_ = true;
}

std::vector<InstrId> Vm::StackTrace(const ThreadState& thread, InstrId failing) const {
  std::vector<InstrId> trace;
  for (const Frame& frame : thread.stack) {
    if (frame.call_site != kNoInstr) {
      trace.push_back(frame.call_site);
    }
  }
  trace.push_back(failing);
  return trace;
}

void Vm::NotifyBlockEnter(ThreadState& thread) {
  const Frame& frame = thread.stack.back();
  ForObservers([&](ExecutionObserver& o) {
    o.OnBlockEnter(thread.id, thread.core, frame.function, frame.block);
  });
}

void Vm::ExitThread(ThreadState& thread) {
  thread.status = ThreadStatus::kExited;
  ForObservers([&](ExecutionObserver& o) { o.OnThreadExit(thread.id); });
  // Wake joiners.
  for (ThreadState& other : threads_) {
    if (other.status == ThreadStatus::kBlockedJoin && other.join_target == thread.id) {
      other.status = ThreadStatus::kRunnable;
      other.join_target = kNoThread;
    }
  }
}

bool Vm::Step(ThreadState& thread) {
  Frame& frame = thread.stack.back();
  const Function& function = module_.function(frame.function);
  const BasicBlock& block = function.block(frame.block);
  GIST_CHECK_LT(frame.index, block.size());
  const Instruction& instr = block.instructions()[frame.index];

  auto reg = [&](Reg r) -> Word {
    GIST_CHECK_LT(r, frame.regs.size());
    return frame.regs[r];
  };
  auto set_reg = [&](Reg r, Word value) {
    if (r != kNoReg) {
      GIST_CHECK_LT(r, frame.regs.size());
      frame.regs[r] = value;
    }
  };
  auto mem_fault = [&](MemFault fault, Addr addr) {
    RaiseFailure(thread, MemFaultToFailure(fault), instr.id,
                 StrFormat("%s at address 0x%llx: %s", FailureTypeName(MemFaultToFailure(fault)),
                           static_cast<unsigned long long>(addr),
                           instr.loc.text.empty() ? OpcodeName(instr.op) : instr.loc.text.c_str()));
  };
  auto emit_access = [&](Addr addr, Word value, bool is_write) {
    MemAccessEvent event{access_seq_++, thread.id, thread.core, instr.id, addr, value, is_write};
    ++result_.stats.mem_accesses;
    ForObservers([&](ExecutionObserver& o) { o.OnMemAccess(event); });
  };
  auto retire = [&]() {
    ForObservers([&](ExecutionObserver& o) { o.OnInstrRetired(thread.id, thread.core, instr.id); });
  };

  if (options_.hook != nullptr) {
    options_.hook->BeforeInstr(thread.id, instr.id, frame.regs);
  }

  // Most instructions fall through to the next index; control flow overrides.
  ++frame.index;

  switch (instr.op) {
    case Opcode::kConst:
      set_reg(instr.dst, instr.imm);
      break;
    case Opcode::kMove:
      set_reg(instr.dst, reg(instr.operands[0]));
      break;
    case Opcode::kNot:
      set_reg(instr.dst, reg(instr.operands[0]) == 0 ? 1 : 0);
      break;
    case Opcode::kBinOp: {
      const Word lhs = reg(instr.operands[0]);
      const Word rhs = reg(instr.operands[1]);
      Word value = 0;
      switch (instr.binop) {
        case BinOp::kAdd:
          value = lhs + rhs;
          break;
        case BinOp::kSub:
          value = lhs - rhs;
          break;
        case BinOp::kMul:
          value = lhs * rhs;
          break;
        case BinOp::kDiv:
        case BinOp::kRem:
          if (rhs == 0) {
            RaiseFailure(thread, FailureType::kArithmeticFault, instr.id, "division by zero");
            return false;
          }
          value = instr.binop == BinOp::kDiv ? lhs / rhs : lhs % rhs;
          break;
        case BinOp::kEq:
          value = lhs == rhs;
          break;
        case BinOp::kNe:
          value = lhs != rhs;
          break;
        case BinOp::kLt:
          value = lhs < rhs;
          break;
        case BinOp::kLe:
          value = lhs <= rhs;
          break;
        case BinOp::kGt:
          value = lhs > rhs;
          break;
        case BinOp::kGe:
          value = lhs >= rhs;
          break;
        case BinOp::kAnd:
          value = (lhs != 0) && (rhs != 0);
          break;
        case BinOp::kOr:
          value = (lhs != 0) || (rhs != 0);
          break;
        case BinOp::kXor:
          value = lhs ^ rhs;
          break;
        case BinOp::kShl:
          value = static_cast<Word>(static_cast<uint64_t>(lhs) << (rhs & 63));
          break;
        case BinOp::kShr:
          value = static_cast<Word>(static_cast<uint64_t>(lhs) >> (rhs & 63));
          break;
      }
      set_reg(instr.dst, value);
      break;
    }
    case Opcode::kLoad: {
      const Addr addr = static_cast<Addr>(reg(instr.operands[0]));
      Word value = 0;
      const MemFault fault = memory_.Read(addr, &value);
      if (fault != MemFault::kOk) {
        mem_fault(fault, addr);
        return false;
      }
      set_reg(instr.dst, value);
      emit_access(addr, value, /*is_write=*/false);
      break;
    }
    case Opcode::kStore: {
      const Addr addr = static_cast<Addr>(reg(instr.operands[0]));
      const Word value = reg(instr.operands[1]);
      const MemFault fault = memory_.Write(addr, value);
      if (fault != MemFault::kOk) {
        mem_fault(fault, addr);
        return false;
      }
      emit_access(addr, value, /*is_write=*/true);
      break;
    }
    case Opcode::kAddrOfGlobal:
      set_reg(instr.dst, static_cast<Word>(memory_.GlobalAddr(instr.global)) + instr.imm);
      break;
    case Opcode::kGep:
      set_reg(instr.dst, reg(instr.operands[0]) + reg(instr.operands[1]));
      break;
    case Opcode::kAlloc: {
      const Word size = reg(instr.operands[0]);
      set_reg(instr.dst, static_cast<Word>(memory_.Alloc(size > 0 ? static_cast<uint64_t>(size)
                                                                  : 1)));
      break;
    }
    case Opcode::kFree: {
      const Addr addr = static_cast<Addr>(reg(instr.operands[0]));
      const MemFault fault = memory_.Free(addr);
      if (fault != MemFault::kOk) {
        mem_fault(fault, addr);
        return false;
      }
      break;
    }
    case Opcode::kCall: {
      if (thread.stack.size() >= options_.max_call_depth) {
        RaiseFailure(thread, FailureType::kStackOverflow, instr.id,
                     "call depth exceeded the stack limit");
        return false;
      }
      Frame callee;
      callee.function = instr.callee;
      callee.regs.assign(module_.function(instr.callee).num_regs(), 0);
      for (size_t i = 0; i < instr.operands.size(); ++i) {
        callee.regs[i] = reg(instr.operands[i]);
      }
      callee.ret_dst = instr.dst;
      callee.call_site = instr.id;
      retire();
      thread.stack.push_back(std::move(callee));
      NotifyBlockEnter(thread);
      return true;
    }
    case Opcode::kRet: {
      const Word value = instr.operands.empty() ? 0 : reg(instr.operands[0]);
      const Reg ret_dst = frame.ret_dst;
      retire();
      thread.stack.pop_back();
      if (thread.stack.empty()) {
        ForObservers([&](ExecutionObserver& o) {
          o.OnReturn(thread.id, thread.core, instr.id, kNoFunction, kNoBlock, 0);
        });
        ExitThread(thread);
        return true;
      }
      Frame& caller = thread.stack.back();
      if (ret_dst != kNoReg) {
        caller.regs[ret_dst] = value;
      }
      ForObservers([&](ExecutionObserver& o) {
        o.OnReturn(thread.id, thread.core, instr.id, caller.function, caller.block, caller.index);
      });
      return true;
    }
    case Opcode::kBr: {
      const bool taken = reg(instr.operands[0]) != 0;
      ++result_.stats.branches;
      ForObservers([&](ExecutionObserver& o) {
        o.OnBranch(thread.id, thread.core, instr.id, taken);
      });
      frame.block = taken ? instr.target0 : instr.target1;
      frame.index = 0;
      retire();
      NotifyBlockEnter(thread);
      return true;
    }
    case Opcode::kJmp:
      frame.block = instr.target0;
      frame.index = 0;
      retire();
      NotifyBlockEnter(thread);
      return true;
    case Opcode::kAssert:
      if (reg(instr.operands[0]) == 0) {
        RaiseFailure(thread, FailureType::kAssertViolation, instr.id,
                     "assertion failed: " + instr.text);
        return false;
      }
      break;
    case Opcode::kThreadCreate: {
      const Word arg = instr.operands.empty() ? 0 : reg(instr.operands[0]);
      const ThreadId child = SpawnThread(instr.callee, {arg}, /*is_main=*/false);
      set_reg(instr.dst, static_cast<Word>(child));
      break;
    }
    case Opcode::kThreadJoin: {
      const Word target = reg(instr.operands[0]);
      if (target < 0 || static_cast<size_t>(target) >= threads_.size()) {
        RaiseFailure(thread, FailureType::kSegFault, instr.id, "join of invalid thread id");
        return false;
      }
      ThreadState& joinee = threads_[static_cast<size_t>(target)];
      if (joinee.status != ThreadStatus::kExited) {
        thread.status = ThreadStatus::kBlockedJoin;
        thread.join_target = joinee.id;
        // Re-execute the join when woken; keep the pc on this instruction.
        --frame.index;
        retire();
        return true;
      }
      break;
    }
    case Opcode::kLock: {
      const Addr addr = static_cast<Addr>(reg(instr.operands[0]));
      const MemFault fault = memory_.Check(addr);
      if (fault != MemFault::kOk) {
        mem_fault(fault, addr);
        return false;
      }
      Mutex& mutex = mutexes_[addr];
      if (mutex.owner == kNoThread) {
        mutex.owner = thread.id;
      } else if (mutex.owner != thread.id) {
        thread.status = ThreadStatus::kBlockedLock;
        thread.lock_target = addr;
        mutex.waiters.push_back(thread.id);
        --frame.index;  // retry the acquire when woken
        retire();
        return true;
      }
      break;
    }
    case Opcode::kUnlock: {
      const Addr addr = static_cast<Addr>(reg(instr.operands[0]));
      const MemFault fault = memory_.Check(addr);
      if (fault != MemFault::kOk) {
        mem_fault(fault, addr);
        return false;
      }
      auto it = mutexes_.find(addr);
      if (it != mutexes_.end() && it->second.owner == thread.id) {
        Mutex& mutex = it->second;
        mutex.owner = kNoThread;
        while (!mutex.waiters.empty()) {
          const ThreadId waiter = mutex.waiters.front();
          mutex.waiters.pop_front();
          if (threads_[waiter].status == ThreadStatus::kBlockedLock) {
            threads_[waiter].status = ThreadStatus::kRunnable;
            threads_[waiter].lock_target = kNullAddr;
            break;
          }
        }
      }
      break;
    }
    case Opcode::kInput: {
      const size_t index = static_cast<size_t>(instr.imm);
      set_reg(instr.dst,
              index < workload_.inputs.size() ? workload_.inputs[index] : 0);
      break;
    }
    case Opcode::kPrint:
      result_.outputs.push_back(reg(instr.operands[0]));
      break;
    case Opcode::kNop:
      break;
  }

  if (options_.hook != nullptr) {
    options_.hook->AfterInstr(thread.id, instr.id, frame.regs);
  }
  retire();
  return true;
}

ThreadId Vm::PickNext() {
  std::vector<ThreadId> runnable;
  for (const ThreadState& thread : threads_) {
    if (thread.status == ThreadStatus::kRunnable) {
      runnable.push_back(thread.id);
    }
  }
  if (runnable.empty()) {
    return kNoThread;
  }
  return runnable[rng_.NextBelow(runnable.size())];
}

RunResult Vm::Run() {
  const FunctionId main_id = module_.FindFunction("main");
  GIST_CHECK_NE(main_id, kNoFunction) << "module has no main()";
  SpawnThread(main_id, {}, /*is_main=*/true);

  ThreadId current = 0;
  core_occupant_[threads_[0].core] = 0;
  ForObservers([&](ExecutionObserver& o) {
    o.OnContextSwitch(threads_[0].core, kNoThread, 0, threads_[0].stack.back().function,
                      threads_[0].stack.back().block, threads_[0].stack.back().index);
  });

  uint64_t quantum = workload_.min_quantum +
                     rng_.NextBelow(workload_.max_quantum - workload_.min_quantum + 1);

  while (!done_) {
    if (result_.stats.steps >= options_.max_steps) {
      ThreadState& thread = threads_[current];
      const InstrId last =
          thread.stack.empty()
              ? kNoInstr
              : module_.function(thread.stack.back().function)
                    .block(thread.stack.back().block)
                    .instructions()[std::min<size_t>(thread.stack.back().index,
                                                     module_.function(thread.stack.back().function)
                                                             .block(thread.stack.back().block)
                                                             .size() -
                                                         1)]
                    .id;
      RaiseFailure(thread, FailureType::kHang, last, "step budget exhausted");
      break;
    }

    ThreadState* thread = &threads_[current];
    const bool need_switch =
        thread->status != ThreadStatus::kRunnable || quantum == 0;
    if (need_switch) {
      const ThreadId next = PickNext();
      if (next == kNoThread) {
        bool any_blocked = false;
        for (const ThreadState& t : threads_) {
          if (t.status == ThreadStatus::kBlockedJoin || t.status == ThreadStatus::kBlockedLock) {
            any_blocked = true;
          }
        }
        if (any_blocked) {
          ThreadState& blocked = threads_[current];
          RaiseFailure(blocked, FailureType::kDeadlock, kNoInstr, "all live threads blocked");
        }
        break;  // every thread exited: normal termination
      }
      if (next != current) {
        ++result_.stats.context_switches;
        const CoreId core = threads_[next].core;
        const ThreadId prev = core_occupant_[core];
        core_occupant_[core] = next;
        const Frame& next_frame = threads_[next].stack.back();
        ForObservers([&](ExecutionObserver& o) {
          o.OnContextSwitch(core, prev, next, next_frame.function, next_frame.block,
                            next_frame.index);
        });
      }
      current = next;
      thread = &threads_[current];
      quantum = workload_.min_quantum +
                rng_.NextBelow(workload_.max_quantum - workload_.min_quantum + 1);
    }

    ++result_.stats.steps;
    if (quantum > 0) {
      --quantum;
    }
    if (!thread->started) {
      thread->started = true;
      NotifyBlockEnter(*thread);
    }
    if (!Step(*thread)) {
      break;
    }
  }
  return result_;
}

}  // namespace gist
