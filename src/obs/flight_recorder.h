// Flight recorder (DESIGN.md §9): the pipeline's always-on telemetry sink.
//
// One recorder rides along a diagnosis (FleetOptions::recorder) and collects
//   - a MetricsRegistry snapshot of every layer (VM, PT, watchpoints, AsT,
//     fleet, statistics), and
//   - a span trace on VIRTUAL time: timestamps and durations are retired-
//     instruction counts accumulated over the consumed runs, never wall
//     clock. src/ deliberately contains no std::chrono — a virtual-time
//     trace is a pure function of (module, options, fleet_seed) and is
//     bit-identical for every --jobs, so it can be diffed in CI like any
//     other deterministic artifact.
//
// TraceJson() emits Chrome trace-event JSON ({"traceEvents": [...]}) loadable
// in Perfetto / chrome://tracing; the "microsecond" axis there simply reads
// as instructions.
//
// Wall-clock numbers (bench measurements, derived accuracies) go into the
// annotation side channel: a plain name→double map that is NEVER part of
// MetricsJson()/TraceJson(). Benches read annotations back directly; the
// deterministic outputs stay quarantined from them by construction.
//
// Threading: the recorder is coordinator-thread only, like the GistServer.
// Workers never touch it — per-run samples travel back in MonitoredRun and
// are merged in run-index order.

#ifndef GIST_SRC_OBS_FLIGHT_RECORDER_H_
#define GIST_SRC_OBS_FLIGHT_RECORDER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace gist {

// One trace event. Args values are raw JSON fragments (use NumArg/StrArg),
// so spans can carry numbers and strings without a JSON AST.
struct TraceSpan {
  std::string name;
  std::string category;
  uint64_t begin = 0;     // virtual timestamp (retired instructions)
  uint64_t duration = 0;  // virtual duration; 0 for instants
  uint32_t track = 0;     // rendered as the trace-event "tid" (a lane)
  bool instant = false;
  std::vector<std::pair<std::string, std::string>> args;
};

using TraceArgs = std::vector<std::pair<std::string, std::string>>;

TraceArgs::value_type NumArg(std::string_view key, uint64_t value);
TraceArgs::value_type NumArg(std::string_view key, int64_t value);
TraceArgs::value_type StrArg(std::string_view key, std::string_view value);

class FlightRecorder {
 public:
  // Well-known span lanes ("tid" in the trace): lane 0 carries the fleet's
  // nested iteration/run spans, lane 1 the control-plane instants (replans,
  // retries, sketch builds) so they don't visually pile onto run spans.
  static constexpr uint32_t kRunTrack = 0;
  static constexpr uint32_t kControlTrack = 1;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Virtual clock: cumulative retired instructions over consumed work.
  uint64_t now() const { return clock_; }
  void AdvanceClock(uint64_t retired_instructions) { clock_ += retired_instructions; }

  void AddSpan(std::string name, std::string category, uint64_t begin, uint64_t end,
               uint32_t track = kRunTrack, TraceArgs args = {});
  void AddInstant(std::string name, std::string category, uint32_t track = kControlTrack,
                  TraceArgs args = {});

  const std::vector<TraceSpan>& spans() const { return spans_; }

  // --- non-deterministic side channel --------------------------------------
  // Named doubles for bench-only data (wall-clock seconds, percentages).
  // Excluded from MetricsJson()/TraceJson() so the deterministic artifacts
  // can never absorb a wall-clock bit.
  void Annotate(std::string_view name, double value);
  double annotation(std::string_view name, double missing = 0.0) const;

  // Deterministic exports.
  std::string MetricsJson(std::string_view exclude_prefix = {}) const {
    return metrics_.ToJson(exclude_prefix);
  }
  std::string TraceJson() const;  // Chrome trace-event format

 private:
  MetricsRegistry metrics_;
  std::vector<TraceSpan> spans_;
  uint64_t clock_ = 0;
  std::map<std::string, double, std::less<>> annotations_;
};

}  // namespace gist

#endif  // GIST_SRC_OBS_FLIGHT_RECORDER_H_
