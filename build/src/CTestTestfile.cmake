# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("cfg")
subdirs("analysis")
subdirs("vm")
subdirs("pt")
subdirs("hw")
subdirs("replay")
subdirs("core")
subdirs("transform")
subdirs("coop")
subdirs("apps")
