// Calibrated cost model for runtime-overhead accounting.
//
// The repository's substrate is an interpreter, so wall-clock time would
// measure the simulator, not the techniques. Instead, every tracing mechanism
// is charged cycle costs against the uninstrumented execution's baseline, and
// overheads are reported as percentages — deterministic, and calibrated so
// the *shape* matches the paper's measurements:
//
//   * Gist (AsT + PT toggling + ≤4 watchpoints): a few percent (§5.3, 3.74%);
//   * full-program Intel PT tracing: ~11% average (Fig. 13);
//   * full software record/replay (Mozilla rr stand-in): ~984% average
//     (Fig. 13), i.e. ~166× Gist's overhead;
//   * software-simulated PT (PIN stand-in): 3×–5000× (§6).
//
// Cost intuition behind the constants: PT drains ~1 byte of trace per ~100
// retired instructions (long TNT packs 47 branch outcomes into 8 bytes) and
// costs mainly memory bandwidth; MSR writes for
// toggling cost ~hundreds of cycles; a debug-register trap costs a kernel
// round-trip; arming via ptrace costs more (attach + pokeuser + detach);
// software tracing costs tens of cycles per event because every event takes
// an instrumented callback.

#ifndef GIST_SRC_HW_PERF_MODEL_H_
#define GIST_SRC_HW_PERF_MODEL_H_

#include <cstdint>

#include "src/vm/observer.h"

namespace gist {

struct CostModel {
  double cycles_per_instr = 1.0;          // uninstrumented baseline
  double cycles_per_pt_byte = 3.5;        // PT bandwidth/packet drag
  double cycles_per_pt_toggle = 300.0;    // MSR write pair (enable/disable)
  double cycles_per_watch_trap = 500.0;   // debug exception + handler
  double cycles_per_watch_arm = 1500.0;   // ptrace attach/poke/detach
  double cycles_per_rr_instr = 8.5;       // record/replay per retired instr
  double cycles_per_rr_mem = 30.0;        // record/replay per memory event
  double cycles_per_swpt_branch = 150.0;  // software PT callback per branch
  double cycles_per_swpt_instr = 2.0;     // software PT per-instruction drag
};

// Counts the baseline activity of one run (an ExecutionObserver so the same
// run that produces traces also yields its denominator).
class PerfCounter : public ExecutionObserver {
 public:
  // Pure event counting: order-insensitive, so batched delivery is exact and
  // a buffered run of N events collapses into one addition.
  uint32_t SubscribedEvents() const override {
    return kEvInstrRetired | kEvBranch | kEvMemAccess;
  }
  bool AcceptsEventBatches() const override { return true; }
  void OnInstrRetiredBatch(ThreadId, CoreId, const InstrId*, size_t count) override {
    instructions_ += count;
  }
  void OnMemAccessBatch(const MemAccessEvent*, size_t count) override {
    mem_accesses_ += count;
  }

  void OnInstrRetired(ThreadId, CoreId, InstrId) override { ++instructions_; }
  void OnBranch(ThreadId, CoreId, InstrId, bool) override { ++branches_; }
  void OnMemAccess(const MemAccessEvent&) override { ++mem_accesses_; }

  uint64_t instructions() const { return instructions_; }
  uint64_t branches() const { return branches_; }
  uint64_t mem_accesses() const { return mem_accesses_; }

 private:
  uint64_t instructions_ = 0;
  uint64_t branches_ = 0;
  uint64_t mem_accesses_ = 0;
};

// Activity of the tracing mechanisms during one run.
struct TracingActivity {
  uint64_t pt_bytes = 0;
  uint64_t pt_toggles = 0;
  uint64_t watch_traps = 0;
  uint64_t watch_arms = 0;
};

// Overhead (in percent of baseline runtime) of Gist's client-side tracking:
// PT toggled around the monitored slice plus hardware watchpoints.
double GistClientOverheadPercent(const CostModel& model, uint64_t baseline_instructions,
                                 const TracingActivity& activity);

// Overhead of full-program Intel PT tracing (tracing never toggled off).
double PtFullTraceOverheadPercent(const CostModel& model, uint64_t baseline_instructions,
                                  uint64_t pt_bytes);

// Overhead of the full software record/replay baseline (Mozilla rr stand-in).
double RecordReplayOverheadPercent(const CostModel& model, uint64_t baseline_instructions,
                                   uint64_t mem_accesses);

// Overhead of simulating PT in software (PIN stand-in, §6).
double SoftwarePtOverheadPercent(const CostModel& model, uint64_t baseline_instructions,
                                 uint64_t branches);

}  // namespace gist

#endif  // GIST_SRC_HW_PERF_MODEL_H_
