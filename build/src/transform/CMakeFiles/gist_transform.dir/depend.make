# Empty dependencies file for gist_transform.
# This may be replaced when dependencies are built.
