#include "src/coop/wire.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/support/check.h"
#include "src/support/str.h"

namespace gist {
namespace {

class Writer {
 public:
  void U32(uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }
  void U64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }
  void I64(int64_t value) { U64(static_cast<uint64_t>(value)); }
  void U8(uint8_t value) { bytes_.push_back(value); }
  void Bytes(const std::vector<uint8_t>& data) {
    U64(data.size());
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  void String(const std::string& text) {
    U64(text.size());
    bytes_.insert(bytes_.end(), text.begin(), text.end());
  }

  std::vector<uint8_t> Take() && { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool U32(uint32_t* out) {
    if (offset_ + 4 > bytes_.size()) {
      return false;
    }
    uint32_t value = 0;
    for (int i = 3; i >= 0; --i) {
      value = (value << 8) | bytes_[offset_ + static_cast<size_t>(i)];
    }
    offset_ += 4;
    *out = value;
    return true;
  }
  bool U64(uint64_t* out) {
    if (offset_ + 8 > bytes_.size()) {
      return false;
    }
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i) {
      value = (value << 8) | bytes_[offset_ + static_cast<size_t>(i)];
    }
    offset_ += 8;
    *out = value;
    return true;
  }
  bool I64(int64_t* out) {
    uint64_t raw;
    if (!U64(&raw)) {
      return false;
    }
    *out = static_cast<int64_t>(raw);
    return true;
  }
  bool U8(uint8_t* out) {
    if (offset_ >= bytes_.size()) {
      return false;
    }
    *out = bytes_[offset_++];
    return true;
  }
  bool Bytes(std::vector<uint8_t>* out) {
    uint64_t size;
    if (!U64(&size) || offset_ + size > bytes_.size()) {
      return false;
    }
    out->assign(bytes_.begin() + static_cast<long>(offset_),
                bytes_.begin() + static_cast<long>(offset_ + size));
    offset_ += size;
    return true;
  }
  bool String(std::string* out) {
    uint64_t size;
    if (!U64(&size) || offset_ + size > bytes_.size()) {
      return false;
    }
    out->assign(bytes_.begin() + static_cast<long>(offset_),
                bytes_.begin() + static_cast<long>(offset_ + size));
    offset_ += size;
    return true;
  }
  // Validates a forthcoming element count against the bytes that remain:
  // each element needs at least `min_element_bytes`, so a corrupt length
  // field cannot trigger a huge allocation.
  bool Count(uint64_t* out, uint64_t min_element_bytes) {
    if (!U64(out)) {
      return false;
    }
    return *out <= (bytes_.size() - offset_) / min_element_bytes;
  }
  bool Done() const { return offset_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t offset_ = 0;
};

}  // namespace

std::vector<uint8_t> SerializeRunTrace(const RunTrace& trace) {
  Writer w;
  w.U32(kWireMagic);
  w.U32(kWireVersion);
  w.U64(trace.run_id);
  w.U8(trace.failed ? 1 : 0);

  // Failure report.
  w.U8(static_cast<uint8_t>(trace.failure.type));
  w.U32(trace.failure.failing_instr);
  w.U32(trace.failure.failing_thread);
  w.String(trace.failure.message);
  w.U64(trace.failure.stack_trace.size());
  for (InstrId frame : trace.failure.stack_trace) {
    w.U32(frame);
  }

  // PT buffers, one per core.
  w.U64(trace.pt_buffers.size());
  for (const std::vector<uint8_t>& buffer : trace.pt_buffers) {
    w.Bytes(buffer);
  }

  // Watchpoint log.
  w.U64(trace.watch_events.size());
  for (const WatchEvent& event : trace.watch_events) {
    w.U64(event.seq);
    w.U32(event.tid);
    w.U32(event.instr);
    w.U64(event.addr);
    w.I64(event.value);
    w.U8(event.is_write ? 1 : 0);
  }

  // Activity counters.
  w.U64(trace.activity.pt_bytes);
  w.U64(trace.activity.pt_toggles);
  w.U64(trace.activity.watch_traps);
  w.U64(trace.activity.watch_arms);
  w.U64(trace.baseline_instructions);
  return std::move(w).Take();
}

Result<RunTrace> DeserializeRunTrace(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!r.U32(&magic) || magic != kWireMagic) {
    return Error("bad magic: not a Gist run trace");
  }
  if (!r.U32(&version) || version != kWireVersion) {
    return Error(StrFormat("unsupported wire version %u", version));
  }

  RunTrace trace;
  uint8_t failed;
  if (!r.U64(&trace.run_id) || !r.U8(&failed)) {
    return Error("truncated header");
  }
  trace.failed = failed != 0;

  uint8_t failure_type;
  if (!r.U8(&failure_type) || !r.U32(&trace.failure.failing_instr) ||
      !r.U32(&trace.failure.failing_thread) || !r.String(&trace.failure.message)) {
    return Error("truncated failure report");
  }
  trace.failure.type = static_cast<FailureType>(failure_type);
  uint64_t frames;
  if (!r.Count(&frames, 4)) {
    return Error("corrupt stack-trace length");
  }
  for (uint64_t i = 0; i < frames; ++i) {
    uint32_t frame;
    if (!r.U32(&frame)) {
      return Error("truncated stack trace");
    }
    trace.failure.stack_trace.push_back(frame);
  }

  uint64_t buffers;
  if (!r.Count(&buffers, 8)) {
    return Error("corrupt PT buffer count");
  }
  for (uint64_t i = 0; i < buffers; ++i) {
    std::vector<uint8_t> buffer;
    if (!r.Bytes(&buffer)) {
      return Error("truncated PT buffer");
    }
    trace.pt_buffers.push_back(std::move(buffer));
  }

  uint64_t events;
  if (!r.Count(&events, 33)) {
    return Error("corrupt watch-event count");
  }
  for (uint64_t i = 0; i < events; ++i) {
    WatchEvent event;
    uint8_t is_write;
    if (!r.U64(&event.seq) || !r.U32(&event.tid) || !r.U32(&event.instr) ||
        !r.U64(&event.addr) || !r.I64(&event.value) || !r.U8(&is_write)) {
      return Error("truncated watch event");
    }
    event.is_write = is_write != 0;
    trace.watch_events.push_back(event);
  }

  if (!r.U64(&trace.activity.pt_bytes) || !r.U64(&trace.activity.pt_toggles) ||
      !r.U64(&trace.activity.watch_traps) || !r.U64(&trace.activity.watch_arms) ||
      !r.U64(&trace.baseline_instructions)) {
    return Error("truncated activity counters");
  }
  if (!r.Done()) {
    return Error("trailing bytes after trace");
  }
  return trace;
}

std::vector<WireMessage> SplitWireMessages(const std::vector<uint8_t>& bytes, size_t mtu_bytes) {
  GIST_CHECK(mtu_bytes > 0);
  const uint32_t total =
      bytes.empty() ? 1 : static_cast<uint32_t>((bytes.size() + mtu_bytes - 1) / mtu_bytes);
  std::vector<WireMessage> messages;
  messages.reserve(total);
  for (uint32_t seq = 0; seq < total; ++seq) {
    WireMessage message;
    message.seq = seq;
    message.total = total;
    const size_t begin = static_cast<size_t>(seq) * mtu_bytes;
    const size_t end = std::min(bytes.size(), begin + mtu_bytes);
    message.payload.assign(bytes.begin() + static_cast<long>(begin),
                           bytes.begin() + static_cast<long>(end));
    messages.push_back(std::move(message));
  }
  return messages;
}

Result<std::vector<uint8_t>> ReassembleWireMessages(std::vector<WireMessage> messages) {
  if (messages.empty()) {
    return Error("no chunks arrived");
  }
  const uint32_t total = messages[0].total;
  for (const WireMessage& message : messages) {
    if (message.total != total) {
      return Error(StrFormat("chunks disagree on total: %u vs %u", message.total, total));
    }
  }
  if (messages.size() > total) {
    return Error(StrFormat("%zu chunks arrived for a %u-chunk upload", messages.size(), total));
  }
  std::sort(messages.begin(), messages.end(),
            [](const WireMessage& a, const WireMessage& b) { return a.seq < b.seq; });
  for (uint32_t seq = 0; seq < messages.size(); ++seq) {
    if (messages[seq].seq != seq) {
      return Error(StrFormat("chunk %u missing from %u-chunk upload",
                             seq < messages[seq].seq ? seq : messages[seq].seq, total));
    }
  }
  if (messages.size() != total) {
    return Error(StrFormat("only %zu of %u chunks arrived", messages.size(), total));
  }
  std::vector<uint8_t> bytes;
  for (const WireMessage& message : messages) {
    bytes.insert(bytes.end(), message.payload.begin(), message.payload.end());
  }
  return bytes;
}

}  // namespace gist
