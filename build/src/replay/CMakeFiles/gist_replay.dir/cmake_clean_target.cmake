file(REMOVE_RECURSE
  "libgist_replay.a"
)
