// Pbzip2 bug #1 (paper Fig. 1): use-after-free / NULL-mutex unlock.
//
// main() tears the queue down while the consumer thread is still running:
// it frees f->mut and nulls the pointer; the consumer then loads f->mut and
// unlocks it. In failing schedules the consumer reads NULL (segfault) or a
// dangling pointer (use-after-free). The developers' fix added
// synchronization so cons() finishes before teardown — the failure sketch
// must therefore show the store/load race across the two threads.

#include "src/apps/app.h"
#include "src/apps/app_util.h"

namespace gist {
namespace {

class Pbzip2App : public BugAppBase {
 public:
  Pbzip2App() {
    info_ = BugInfo{"pbzip2",       "Pbzip2", "0.9.4", "N/A",
                    "Concurrency bug, segmentation fault", 1492};
    Build();
  }

  Workload MakeWorkload(uint64_t /*run_index*/, Rng& rng) const override {
    Workload workload;
    workload.schedule_seed = rng.NextU64();
    // input 0: how long the consumer works before touching the mutex;
    // input 1: how much compression work main does before teardown;
    // input 2: workload scale (file size), inflated by the overhead benches.
    // The consumer usually finishes before teardown; failures need the
    // scheduler to starve it (rare, like the real four-month-old bug).
    workload.inputs = {static_cast<Word>(rng.NextBelow(3)),
                       static_cast<Word>(4 + rng.NextBelow(6)),
                       static_cast<Word>(20 + rng.NextBelow(30))};
    return workload;
  }

 private:
  void Build() {
    IrBuilder b(*module_);
    const FunctionId cons = BuildCons(b);
    BuildMain(b, cons);
  }

  FunctionId BuildCons(IrBuilder& b) {
    Function& f = b.StartFunction("cons", 1);  // r0 = queue* f

    b.Src(20, "cons(queue* f) {");
    EmitInputScaledLoop(b, 6, 0, "consume");  // consume queued blocks

    b.Src(22, "mut = f->mut;");
    const Reg mut = b.Load(0);
    cons_load_ = b.last_instr_id();

    b.Src(23, "mutex_unlock(f->mut);");
    b.Unlock(mut);
    unlock_ = b.last_instr_id();

    b.Src(24, "}");
    b.Ret();
    return f.id();
  }

  void BuildMain(IrBuilder& b, FunctionId cons) {
    b.StartFunction("main", 0);

    // Read and block-split the input file (bulk of the program's work).
    EmitInputScaledLoop(b, 30, 2, "readfile");

    b.Src(1, "queue* f = init(size);");
    const Reg two = b.Const(2);
    const Reg f = b.Alloc(two);
    alloc_f_ = b.last_instr_id();
    const Reg one = b.Const(1);
    const Reg mut = b.Alloc(one);
    b.Src(2, "f->mut = mutex_init();");
    b.Store(f, mut);

    b.Src(3, "create_thread(cons, f);");
    const Reg tid = b.ThreadCreate(cons, f);
    spawn_ = b.last_instr_id();

    // Main compresses a few more blocks before deciding to shut down.
    EmitInputScaledLoop(b, 8, 1, "compress");

    b.Src(6, "free(f->mut);");
    const Reg stale = b.Load(f);
    teardown_load_ = b.last_instr_id();
    b.Free(stale);
    free_ = b.last_instr_id();

    b.Src(7, "f->mut = NULL;");
    const Reg null_value = b.Const(0);
    b.Store(f, null_value);
    null_store_ = b.last_instr_id();

    b.Src(8, "join(cons);");
    b.ThreadJoin(tid);
    b.Src(9, "}");
    b.Ret();

    // Ground truth (Fig. 1): init, create_thread, free, the NULL store, the
    // consumer's load and unlock.
    ideal_.instrs = {alloc_f_, spawn_, teardown_load_, free_, null_store_, cons_load_, unlock_};
    ideal_.access_order = {teardown_load_, null_store_, cons_load_};
    root_cause_ = {spawn_, null_store_, cons_load_, unlock_};
  }

  InstrId alloc_f_ = kNoInstr;
  InstrId spawn_ = kNoInstr;
  InstrId teardown_load_ = kNoInstr;
  InstrId free_ = kNoInstr;
  InstrId null_store_ = kNoInstr;
  InstrId cons_load_ = kNoInstr;
  InstrId unlock_ = kNoInstr;
};

}  // namespace

std::unique_ptr<BugApp> MakePbzip2App() { return std::make_unique<Pbzip2App>(); }

}  // namespace gist
