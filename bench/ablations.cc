// Ablation studies on Gist's design choices (DESIGN.md §3):
//
//   A. AsT growth strategy — multiplicative doubling (the paper's choice) vs
//      linear growth: latency (failure recurrences) to reach the root cause.
//   B. Hardware watchpoint budget — 1 / 2 / 4 (x86) / 8 slots: does the
//      cooperative rotation compensate for scarcer debug registers?
//   C. F-measure β — 0.25 / 0.5 (the paper's precision-favouring choice) /
//      1.0 / 2.0: does the top-ranked predictor still point at a root-cause
//      statement?

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "src/analysis/slicer.h"
#include "src/support/logging.h"
#include "src/vm/vm.h"

namespace gist {
namespace {

const char* kApps[] = {"apache-1",   "apache-2",  "apache-3", "apache-4",
                       "cppcheck-1", "cppcheck-2", "curl",     "transmission",
                       "sqlite",     "memcached",  "pbzip2"};

struct SweepResult {
  double avg_recurrences = 0.0;
  double avg_accuracy = 0.0;
  int diagnosed = 0;
  int total = 0;
};

SweepResult RunSweep(const FleetOptions& options) {
  SweepResult sweep;
  for (const char* name : kApps) {
    AppFleetOutcome outcome = RunAppFleet(name, options);
    ++sweep.total;
    if (!outcome.fleet.root_cause_found) {
      continue;
    }
    ++sweep.diagnosed;
    sweep.avg_recurrences += outcome.fleet.failure_recurrences;
    sweep.avg_accuracy += outcome.accuracy.overall;
  }
  if (sweep.diagnosed > 0) {
    sweep.avg_recurrences /= sweep.diagnosed;
    sweep.avg_accuracy /= sweep.diagnosed;
  }
  return sweep;
}

void AblationGrowth() {
  std::printf("A. AsT growth strategy (avg over diagnosed bugs)\n");
  std::printf("%-18s %12s %14s %12s\n", "growth", "diagnosed", "recurrences", "accuracy");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (AstGrowth growth : {AstGrowth::kMultiplicative, AstGrowth::kLinear}) {
    FleetOptions options = DefaultBenchFleetOptions();
    options.gist.ast_growth = growth;
    options.max_iterations = growth == AstGrowth::kLinear ? 24 : 8;
    SweepResult sweep = RunSweep(options);
    std::printf("%-18s %8d/%-3d %14.1f %11.1f%%\n",
                growth == AstGrowth::kMultiplicative ? "multiplicative" : "linear",
                sweep.diagnosed, sweep.total, sweep.avg_recurrences, sweep.avg_accuracy);
  }
  std::printf("\nDoubling reaches distant root causes in O(log) iterations; linear growth\n"
              "pays one failure recurrence per +sigma step (paper SS3.2.1's rationale).\n\n");
}

void AblationWatchpoints() {
  std::printf("B. Hardware watchpoint budget (cooperative rotation active)\n");
  std::printf("%-12s %12s %14s %12s\n", "slots", "diagnosed", "recurrences", "accuracy");
  std::printf("%s\n", std::string(54, '-').c_str());
  for (uint32_t slots : {1u, 2u, 4u, 8u}) {
    FleetOptions options = DefaultBenchFleetOptions();
    options.gist.watchpoint_slots = slots;
    SweepResult sweep = RunSweep(options);
    std::printf("%-12u %8d/%-3d %14.1f %11.1f%%\n", slots, sweep.diagnosed, sweep.total,
                sweep.avg_recurrences, sweep.avg_accuracy);
  }
  std::printf("\nEven one debug register diagnoses most bugs — rotation across production\n"
              "runs covers the address set cooperatively (SS3.2.3) at higher latency.\n\n");
}

void AblationBeta() {
  std::printf("C. F-measure beta: does the top-ranked predictor hit the root cause?\n");
  std::printf("%-8s %24s\n", "beta", "top-1 hits root cause");
  std::printf("%s\n", std::string(36, '-').c_str());
  for (double beta : {0.25, 0.5, 1.0, 2.0}) {
    int hits = 0;
    int total = 0;
    for (const char* name : kApps) {
      FleetOptions options = DefaultBenchFleetOptions();
      options.gist.beta = beta;
      AppFleetOutcome outcome = RunAppFleet(name, options);
      if (!outcome.fleet.root_cause_found) {
        continue;
      }
      ++total;
      std::set<InstrId> root(outcome.app->root_cause_instrs().begin(),
                             outcome.app->root_cause_instrs().end());
      // The sketch's best predictor of any family.
      const FailureSketch& sketch = outcome.fleet.sketch;
      double best_f = -1.0;
      Predictor best;
      for (const auto& scored :
           {sketch.best_concurrency, sketch.best_value, sketch.best_value_range,
            sketch.best_branch}) {
        if (scored.has_value() && scored->f_measure > best_f) {
          best_f = scored->f_measure;
          best = scored->predictor;
        }
      }
      const bool hit = root.count(best.a) != 0 || root.count(best.b) != 0 ||
                       root.count(best.c) != 0;
      hits += hit;
    }
    std::printf("%-8.2f %17d/%d\n", beta, hits, total);
  }
  std::printf("\nbeta = 0.5 favours precision, keeping wrong 'root causes' out of the\n"
              "sketch's dotted boxes (SS3.3's information-retrieval argument).\n");
}

void AblationAliasAnalysis() {
  std::printf("D. Slice size with vs without conservative alias analysis\n");
  std::printf("   (the paper's SS3.1 argument for omitting alias analysis)\n");
  std::printf("%-14s %16s %18s %10s\n", "Bug", "no-alias slice", "may-alias slice", "blow-up");
  std::printf("%s\n", std::string(62, '-').c_str());
  double ratio_sum = 0.0;
  int count = 0;
  for (const char* name : kApps) {
    auto app = MakeAppByName(name);
    // Seed the slicer from a real failure.
    Rng rng(77);
    FailureReport report;
    bool found = false;
    for (uint64_t run = 0; run < 1000 && !found; ++run) {
      Workload workload = app->MakeWorkload(run, rng);
      Vm vm(app->module(), workload, VmOptions{});
      const RunResult result = vm.Run();
      if (!result.ok() && result.failure.failing_instr != kNoInstr) {
        report = result.failure;
        found = true;
      }
    }
    if (!found) {
      continue;
    }
    Ticfg ticfg(app->module());
    const StaticSlice lean = ComputeBackwardSlice(ticfg, report.failing_instr);
    const StaticSlice fat = ComputeBackwardSliceWithAliases(ticfg, report.failing_instr);
    const double ratio = static_cast<double>(fat.instrs.size()) / lean.instrs.size();
    std::printf("%-14s %16zu %18zu %9.1fx\n", name, lean.instrs.size(), fat.instrs.size(),
                ratio);
    ratio_sum += ratio;
    ++count;
  }
  std::printf("%s\n", std::string(62, '-').c_str());
  std::printf("%-14s %35s %9.1fx\n", "average", "", ratio_sum / count);
  std::printf("\nEvery sliced statement is monitored at runtime: the may-alias blow-up is\n"
              "overhead Gist avoids by recovering memory flow with watchpoints instead.\n");
}

void AblationPrivacy() {
  std::printf("\nE. Anonymized traces (paper SS6's privacy discussion)\n");
  std::printf("   Values and messages scrubbed before shipping; order survives.\n");
  std::printf("%-14s %12s %22s %22s\n", "Bug", "diagnosed", "top value F (clear)",
              "top value F (anon)");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (const char* name : kApps) {
    FleetOptions clear_options = DefaultBenchFleetOptions();
    AppFleetOutcome clear = RunAppFleet(name, clear_options);
    FleetOptions anon_options = DefaultBenchFleetOptions();
    anon_options.anonymize_traces = true;
    AppFleetOutcome anonymized = RunAppFleet(name, anon_options);
    auto value_f = [](const AppFleetOutcome& outcome) {
      return outcome.fleet.sketch.best_value.has_value()
                 ? outcome.fleet.sketch.best_value->f_measure
                 : 0.0;
    };
    std::printf("%-14s %11s %21.2f %21.2f\n", name,
                anonymized.fleet.root_cause_found ? "yes" : "NO", value_f(clear),
                value_f(anonymized));
  }
  std::printf("%s\n", std::string(74, '-').c_str());
  std::printf("\nDiagnosis is statement/order-driven and survives anonymization; the cost\n"
              "is value-predictor precision (the sharpest signal for input-dependent\n"
              "sequential bugs like curl's), exactly the trade-off SS6 anticipates.\n");
}

int Main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("Ablations over Gist's design choices\n");
  std::printf("%s\n\n", std::string(60, '=').c_str());
  AblationGrowth();
  AblationWatchpoints();
  AblationBeta();
  AblationAliasAnalysis();
  AblationPrivacy();
  return 0;
}

}  // namespace
}  // namespace gist

int main() { return gist::Main(); }
