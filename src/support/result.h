// Result<T>: value-or-error return type used at library boundaries.
//
// The library does not throw exceptions across public interfaces; fallible
// operations (parsing, verification, decoding) return Result<T>. Dereferencing
// an error Result is a programmer error and aborts via GIST_CHECK.

#ifndef GIST_SRC_SUPPORT_RESULT_H_
#define GIST_SRC_SUPPORT_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "src/support/check.h"

namespace gist {

// Error payload: a human-readable message.
class Error {
 public:
  explicit Error(std::string message) : message_(std::move(message)) {}

  const std::string& message() const { return message_; }

 private:
  std::string message_;
};

template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` / `return Error(...)`.
  Result(T value) : value_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}        // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }

  const T& value() const& {
    GIST_CHECK(ok()) << "Result::value() on error: " << error_->message();
    return *value_;
  }
  T& value() & {
    GIST_CHECK(ok()) << "Result::value() on error: " << error_->message();
    return *value_;
  }
  T&& value() && {
    GIST_CHECK(ok()) << "Result::value() on error: " << error_->message();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    GIST_CHECK(!ok()) << "Result::error() on ok result";
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

// Status-like specialization for operations with no payload.
class Status {
 public:
  Status() = default;                                       // ok
  Status(Error error) : error_(std::move(error)) {}         // NOLINT(google-explicit-constructor)

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  const Error& error() const {
    GIST_CHECK(!ok()) << "Status::error() on ok status";
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace gist

#endif  // GIST_SRC_SUPPORT_RESULT_H_
