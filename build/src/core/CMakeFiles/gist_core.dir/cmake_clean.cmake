file(REMOVE_RECURSE
  "CMakeFiles/gist_core.dir/accuracy.cc.o"
  "CMakeFiles/gist_core.dir/accuracy.cc.o.d"
  "CMakeFiles/gist_core.dir/client_runtime.cc.o"
  "CMakeFiles/gist_core.dir/client_runtime.cc.o.d"
  "CMakeFiles/gist_core.dir/gist.cc.o"
  "CMakeFiles/gist_core.dir/gist.cc.o.d"
  "CMakeFiles/gist_core.dir/instrumentation.cc.o"
  "CMakeFiles/gist_core.dir/instrumentation.cc.o.d"
  "CMakeFiles/gist_core.dir/predictors.cc.o"
  "CMakeFiles/gist_core.dir/predictors.cc.o.d"
  "CMakeFiles/gist_core.dir/renderer.cc.o"
  "CMakeFiles/gist_core.dir/renderer.cc.o.d"
  "CMakeFiles/gist_core.dir/sketch.cc.o"
  "CMakeFiles/gist_core.dir/sketch.cc.o.d"
  "CMakeFiles/gist_core.dir/statistics.cc.o"
  "CMakeFiles/gist_core.dir/statistics.cc.o.d"
  "libgist_core.a"
  "libgist_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
