#include <gtest/gtest.h>

#include "src/ir/parser.h"
#include "src/vm/vm.h"

namespace gist {
namespace {

RunResult RunProgram(const char* text, Workload workload = {}) {
  auto module = ParseModule(text);
  EXPECT_TRUE(module.ok()) << module.error().message();
  Vm vm(**module, std::move(workload), VmOptions{});
  return vm.Run();
}

TEST(VmTest, ArithmeticAndPrint) {
  RunResult result = RunProgram(R"(
func main() {
entry:
  r0 = const 6
  r1 = const 7
  r2 = mul r0, r1
  print r2
  ret
}
)");
  ASSERT_TRUE(result.ok()) << result.failure.message;
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0], 42);
}

TEST(VmTest, BranchSelectsSide) {
  const char* program = R"(
func main() {
entry:
  r0 = input 0
  br r0, ^then, ^else
then:
  r1 = const 1
  print r1
  jmp ^exit
else:
  r2 = const 2
  print r2
  jmp ^exit
exit:
  ret
}
)";
  Workload truthy;
  truthy.inputs = {1};
  EXPECT_EQ(RunProgram(program, truthy).outputs[0], 1);
  Workload falsy;
  falsy.inputs = {0};
  EXPECT_EQ(RunProgram(program, falsy).outputs[0], 2);
}

TEST(VmTest, LoopComputesSum) {
  RunResult result = RunProgram(R"(
func main() {
entry:
  r0 = const 0      ; sum
  r1 = const 0      ; i
  r2 = const 10
  jmp ^head
head:
  r3 = lt r1, r2
  br r3, ^body, ^exit
body:
  r0 = add r0, r1
  r4 = const 1
  r1 = add r1, r4
  jmp ^head
exit:
  print r0
  ret
}
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.outputs[0], 45);
}

TEST(VmTest, CallsPassArgsAndReturnValues) {
  RunResult result = RunProgram(R"(
func square(1) {
entry:
  r1 = mul r0, r0
  ret r1
}
func main() {
entry:
  r0 = const 9
  r1 = call @square(r0)
  print r1
  ret
}
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.outputs[0], 81);
}

TEST(VmTest, RecursionWorks) {
  RunResult result = RunProgram(R"(
func fact(1) {
entry:
  r1 = const 2
  r2 = lt r0, r1
  br r2, ^base, ^rec
base:
  r3 = const 1
  ret r3
rec:
  r4 = const 1
  r5 = sub r0, r4
  r6 = call @fact(r5)
  r7 = mul r0, r6
  ret r7
}
func main() {
entry:
  r0 = const 6
  r1 = call @fact(r0)
  print r1
  ret
}
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.outputs[0], 720);
}

TEST(VmTest, HeapAllocLoadStore) {
  RunResult result = RunProgram(R"(
func main() {
entry:
  r0 = const 4
  r1 = alloc r0
  r2 = const 2
  r3 = gep r1, r2
  r4 = const 99
  store r3, r4
  r5 = load r3
  print r5
  free r1
  ret
}
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.outputs[0], 99);
}

TEST(VmTest, NullDerefIsSegfault) {
  RunResult result = RunProgram(R"(
func main() {
entry:
  r0 = const 0
  r1 = load r0
  ret
}
)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failure.type, FailureType::kSegFault);
  EXPECT_EQ(result.failure.failing_instr, 1u);
}

TEST(VmTest, UseAfterFreeDetected) {
  RunResult result = RunProgram(R"(
func main() {
entry:
  r0 = const 2
  r1 = alloc r0
  free r1
  r2 = load r1
  ret
}
)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failure.type, FailureType::kUseAfterFree);
}

TEST(VmTest, DoubleFreeDetected) {
  RunResult result = RunProgram(R"(
func main() {
entry:
  r0 = const 2
  r1 = alloc r0
  free r1
  free r1
  ret
}
)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failure.type, FailureType::kDoubleFree);
}

TEST(VmTest, AssertViolationDetected) {
  RunResult result = RunProgram(R"(
func main() {
entry:
  r0 = const 0
  assert r0, "should not be zero"
  ret
}
)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failure.type, FailureType::kAssertViolation);
  EXPECT_NE(result.failure.message.find("should not be zero"), std::string::npos);
}

TEST(VmTest, DivisionByZeroFaults) {
  RunResult result = RunProgram(R"(
func main() {
entry:
  r0 = const 5
  r1 = const 0
  r2 = div r0, r1
  ret
}
)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failure.type, FailureType::kArithmeticFault);
}

TEST(VmTest, ThreadsJoinAndShareMemory) {
  RunResult result = RunProgram(R"(
global cell 1 0
func writer(1) {
entry:
  r1 = addrof cell
  store r1, r0
  ret
}
func main() {
entry:
  r0 = const 77
  r1 = spawn @writer(r0)
  join r1
  r2 = addrof cell
  r3 = load r2
  print r3
  ret
}
)");
  ASSERT_TRUE(result.ok()) << result.failure.message;
  EXPECT_EQ(result.outputs[0], 77);
  EXPECT_EQ(result.stats.threads_created, 2u);
}

TEST(VmTest, LocksGiveMutualExclusion) {
  // Two threads each do 200 locked increments; with the lock the total is
  // always exact regardless of seed.
  const char* program = R"(
global counter 1 0
global mu 1 0
func worker(1) {
entry:
  r1 = const 0
  jmp ^head
head:
  r2 = const 200
  r3 = lt r1, r2
  br r3, ^body, ^exit
body:
  r4 = addrof mu
  lock r4
  r5 = addrof counter
  r6 = load r5
  r7 = const 1
  r8 = add r6, r7
  store r5, r8
  unlock r4
  r1 = add r1, r7
  jmp ^head
exit:
  ret
}
func main() {
entry:
  r0 = const 0
  r1 = spawn @worker(r0)
  r2 = spawn @worker(r0)
  join r1
  join r2
  r3 = addrof counter
  r4 = load r3
  print r4
  ret
}
)";
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Workload workload;
    workload.schedule_seed = seed;
    RunResult result = RunProgram(program, workload);
    ASSERT_TRUE(result.ok()) << result.failure.message;
    EXPECT_EQ(result.outputs[0], 400) << "seed " << seed;
  }
}

TEST(VmTest, UnsynchronizedCountersLoseUpdatesForSomeSeed) {
  // The same program without locks must exhibit a lost update for at least
  // one seed: that is the data race Gist exists to diagnose.
  const char* program = R"(
global counter 1 0
func worker(1) {
entry:
  r1 = const 0
  jmp ^head
head:
  r2 = const 50
  r3 = lt r1, r2
  br r3, ^body, ^exit
body:
  r5 = addrof counter
  r6 = load r5
  r7 = const 1
  r8 = add r6, r7
  store r5, r8
  r1 = add r1, r7
  jmp ^head
exit:
  ret
}
func main() {
entry:
  r0 = const 0
  r1 = spawn @worker(r0)
  r2 = spawn @worker(r0)
  join r1
  join r2
  r3 = addrof counter
  r4 = load r3
  print r4
  ret
}
)";
  bool lost_update = false;
  for (uint64_t seed = 1; seed <= 20 && !lost_update; ++seed) {
    Workload workload;
    workload.schedule_seed = seed;
    RunResult result = RunProgram(program, workload);
    ASSERT_TRUE(result.ok());
    if (result.outputs[0] < 100) {
      lost_update = true;
    }
  }
  EXPECT_TRUE(lost_update);
}

TEST(VmTest, DeadlockDetected) {
  RunResult result = RunProgram(R"(
global a 1 0
global b 1 0
func t2(1) {
entry:
  r1 = addrof b
  lock r1
  r2 = addrof a
  lock r2
  unlock r2
  unlock r1
  ret
}
func main() {
entry:
  r0 = const 0
  r1 = addrof a
  lock r1
  r2 = spawn @t2(r0)
  r3 = addrof b
  lock r3
  unlock r3
  unlock r1
  join r2
  ret
}
)", [] {
    Workload w;
    // A seed that actually interleaves the two acquisitions.
    w.schedule_seed = 2;
    w.min_quantum = 1;
    w.max_quantum = 2;
    return w;
  }());
  // Either the schedule avoided the deadlock (ok) or it deadlocked; with the
  // tight quantum above, some seed in this range must deadlock.
  if (!result.ok()) {
    EXPECT_EQ(result.failure.type, FailureType::kDeadlock);
    return;
  }
  bool deadlocked = false;
  for (uint64_t seed = 1; seed <= 30 && !deadlocked; ++seed) {
    Workload w;
    w.schedule_seed = seed;
    w.min_quantum = 1;
    w.max_quantum = 2;
    RunResult r = RunProgram(R"(
global a 1 0
global b 1 0
func t2(1) {
entry:
  r1 = addrof b
  lock r1
  r2 = addrof a
  lock r2
  unlock r2
  unlock r1
  ret
}
func main() {
entry:
  r0 = const 0
  r1 = addrof a
  lock r1
  r2 = spawn @t2(r0)
  r3 = addrof b
  lock r3
  unlock r3
  unlock r1
  join r2
  ret
}
)", w);
    deadlocked = !r.ok() && r.failure.type == FailureType::kDeadlock;
  }
  EXPECT_TRUE(deadlocked);
}

TEST(VmTest, HangDetectedOnInfiniteLoop) {
  auto module = ParseModule(R"(
func main() {
entry:
  jmp ^entry
}
)");
  ASSERT_TRUE(module.ok());
  VmOptions options;
  options.max_steps = 10'000;
  Vm vm(**module, Workload{}, options);
  RunResult result = vm.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failure.type, FailureType::kHang);
}

TEST(VmTest, StackTraceListsCallSites) {
  RunResult result = RunProgram(R"(
func inner(1) {
entry:
  r1 = load r0
  ret r1
}
func outer(1) {
entry:
  r1 = call @inner(r0)
  ret r1
}
func main() {
entry:
  r0 = const 0
  r1 = call @outer(r0)
  ret
}
)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failure.type, FailureType::kSegFault);
  // main's call -> outer's call -> faulting load.
  ASSERT_EQ(result.failure.stack_trace.size(), 3u);
  EXPECT_EQ(result.failure.stack_trace.back(), result.failure.failing_instr);
}

TEST(VmTest, FailureMatchHashStableAcrossSeeds) {
  const char* program = R"(
func main() {
entry:
  r0 = const 0
  r1 = load r0
  ret
}
)";
  Workload w1;
  w1.schedule_seed = 1;
  Workload w2;
  w2.schedule_seed = 99;
  const RunResult r1 = RunProgram(program, w1);
  const RunResult r2 = RunProgram(program, w2);
  ASSERT_FALSE(r1.ok());
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r1.failure.MatchHash(), r2.failure.MatchHash());
}

TEST(VmTest, DeterministicForSameWorkload) {
  const char* program = R"(
global cell 1 0
func w(1) {
entry:
  r1 = addrof cell
  r2 = load r1
  r3 = const 1
  r4 = add r2, r3
  store r1, r4
  ret
}
func main() {
entry:
  r0 = const 0
  r1 = spawn @w(r0)
  r2 = spawn @w(r0)
  join r1
  join r2
  r3 = addrof cell
  r4 = load r3
  print r4
  ret
}
)";
  Workload workload;
  workload.schedule_seed = 1234;
  const RunResult a = RunProgram(program, workload);
  const RunResult b = RunProgram(program, workload);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.stats.steps, b.stats.steps);
  EXPECT_EQ(a.stats.context_switches, b.stats.context_switches);
}

}  // namespace
}  // namespace gist
