// MiniIR module: the unit of compilation, analysis, and execution.

#ifndef GIST_SRC_IR_MODULE_H_
#define GIST_SRC_IR_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ir/function.h"
#include "src/ir/ids.h"

namespace gist {

struct GlobalVar {
  std::string name;
  uint64_t size_words = 1;
  Word initial_value = 0;  // every word of the global starts at this value
};

// Where an instruction lives; resolvable from its module-wide id.
struct InstrLocation {
  FunctionId function = kNoFunction;
  BlockId block = kNoBlock;
  uint32_t index = 0;  // position within the block
};

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  Function& CreateFunction(std::string name, uint32_t num_params);
  GlobalId CreateGlobal(std::string name, uint64_t size_words = 1, Word initial_value = 0);

  const Function& function(FunctionId id) const {
    GIST_CHECK_LT(id, functions_.size());
    return *functions_[id];
  }
  Function& mutable_function(FunctionId id) {
    GIST_CHECK_LT(id, functions_.size());
    return *functions_[id];
  }
  size_t num_functions() const { return functions_.size(); }

  FunctionId FindFunction(const std::string& name) const;

  const GlobalVar& global(GlobalId id) const {
    GIST_CHECK_LT(id, globals_.size());
    return globals_[id];
  }
  size_t num_globals() const { return globals_.size(); }
  GlobalId FindGlobal(const std::string& name) const;

  // Assigns a fresh module-wide instruction id; called by the builder/parser
  // when appending instructions.
  InstrId NextInstrId(InstrLocation location);

  size_t num_instructions() const { return locations_.size(); }
  const InstrLocation& location(InstrId id) const {
    GIST_CHECK_LT(id, locations_.size());
    return locations_[id];
  }
  const Instruction& instr(InstrId id) const;

  // Total number of distinct (function, line) source lines covered by the
  // given instruction ids; Table 1 reports slice sizes in both units.
  size_t CountSourceLines(const std::vector<InstrId>& instrs) const;

  std::string ToString() const;

 private:
  std::string FunctionNameOrDie(FunctionId id) const;

  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<GlobalVar> globals_;
  std::vector<InstrLocation> locations_;
};

}  // namespace gist

#endif  // GIST_SRC_IR_MODULE_H_
