file(REMOVE_RECURSE
  "libgist_vm.a"
)
