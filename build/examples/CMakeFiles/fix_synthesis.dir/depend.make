# Empty dependencies file for fix_synthesis.
# This may be replaced when dependencies are built.
