file(REMOVE_RECURSE
  "CMakeFiles/gist_coop.dir/fleet.cc.o"
  "CMakeFiles/gist_coop.dir/fleet.cc.o.d"
  "CMakeFiles/gist_coop.dir/privacy.cc.o"
  "CMakeFiles/gist_coop.dir/privacy.cc.o.d"
  "CMakeFiles/gist_coop.dir/wire.cc.o"
  "CMakeFiles/gist_coop.dir/wire.cc.o.d"
  "libgist_coop.a"
  "libgist_coop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_coop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
