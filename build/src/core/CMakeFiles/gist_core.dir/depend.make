# Empty dependencies file for gist_core.
# This may be replaced when dependencies are built.
