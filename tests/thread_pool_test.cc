#include "src/support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace gist {
namespace {

TEST(ThreadPoolTest, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, [&](uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 5);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::HardwareThreads());
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr uint64_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](uint64_t i) { ++hits[i]; });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWritesLandInIndexSlots) {
  // The merge loop depends on results[k] corresponding to index k no matter
  // which worker ran it.
  ThreadPool pool(4);
  std::vector<uint64_t> results(257);
  pool.ParallelFor(results.size(), [&](uint64_t i) { results[i] = i * i; });
  for (uint64_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i], i * i);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](uint64_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(100, [&](uint64_t i) {
      if (i == 7 || i == 93) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");
  }
}

TEST(ThreadPoolTest, InlinePoolPropagatesExceptions) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(3, [&](uint64_t i) {
    if (i == 1) {
      throw std::runtime_error("inline");
    }
  }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SubmitReturnsFutureThatCompletes) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto future = pool.Submit([&] { value = 42; });
  future.wait();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedWork) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&] { ++completed; });
    }
  }  // shutdown must run (not drop) everything already queued
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(20, [&](uint64_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), 50u * (19u * 20u / 2u));
}

}  // namespace
}  // namespace gist
