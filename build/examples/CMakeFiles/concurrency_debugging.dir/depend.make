# Empty dependencies file for concurrency_debugging.
# This may be replaced when dependencies are built.
