file(REMOVE_RECURSE
  "CMakeFiles/instrumentation_test.dir/instrumentation_test.cc.o"
  "CMakeFiles/instrumentation_test.dir/instrumentation_test.cc.o.d"
  "instrumentation_test"
  "instrumentation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
