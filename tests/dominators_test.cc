// Dominator / postdominator tests, including randomized property checks
// against a brute-force reference computed by path enumeration.

#include <gtest/gtest.h>

#include <set>

#include "src/cfg/dominators.h"
#include "src/ir/builder.h"
#include "src/ir/parser.h"
#include "src/support/rng.h"

namespace gist {
namespace {

std::unique_ptr<Module> Diamond() {
  auto module = ParseModule(R"(
func main() {
entry:
  r0 = input 0
  br r0, ^left, ^right
left:
  jmp ^merge
right:
  jmp ^merge
merge:
  ret
}
)");
  EXPECT_TRUE(module.ok());
  return std::move(*module);
}

TEST(DominatorsTest, DiamondIdoms) {
  auto module = Diamond();
  const Function& f = module->function(0);
  Cfg cfg(f);
  DominatorTree dom = DominatorTree::ComputeDominators(cfg);
  const BlockId entry = f.FindBlock("entry");
  const BlockId left = f.FindBlock("left");
  const BlockId right = f.FindBlock("right");
  const BlockId merge = f.FindBlock("merge");
  EXPECT_EQ(dom.idom(entry), entry);
  EXPECT_EQ(dom.idom(left), entry);
  EXPECT_EQ(dom.idom(right), entry);
  EXPECT_EQ(dom.idom(merge), entry);  // neither branch side dominates merge
  EXPECT_TRUE(dom.Dominates(entry, merge));
  EXPECT_FALSE(dom.Dominates(left, merge));
  EXPECT_TRUE(dom.StrictlyDominates(entry, left));
  EXPECT_FALSE(dom.StrictlyDominates(entry, entry));
}

TEST(DominatorsTest, DiamondPostdoms) {
  auto module = Diamond();
  const Function& f = module->function(0);
  Cfg cfg(f);
  DominatorTree pdom = DominatorTree::ComputePostDominators(cfg);
  const BlockId entry = f.FindBlock("entry");
  const BlockId left = f.FindBlock("left");
  const BlockId merge = f.FindBlock("merge");
  // merge postdominates everything.
  EXPECT_TRUE(pdom.Dominates(merge, entry));
  EXPECT_TRUE(pdom.Dominates(merge, left));
  EXPECT_EQ(pdom.idom(entry), merge);
  // The virtual exit is merge's immediate postdominator.
  EXPECT_EQ(pdom.idom(merge), pdom.virtual_exit());
}

TEST(DominatorsTest, LoopHeaderDominatesBody) {
  auto module = ParseModule(R"(
func main() {
entry:
  jmp ^head
head:
  r0 = input 0
  br r0, ^body, ^exit
body:
  jmp ^head
exit:
  ret
}
)");
  ASSERT_TRUE(module.ok());
  const Function& f = (*module)->function(0);
  Cfg cfg(f);
  DominatorTree dom = DominatorTree::ComputeDominators(cfg);
  const BlockId head = f.FindBlock("head");
  const BlockId body = f.FindBlock("body");
  const BlockId exit = f.FindBlock("exit");
  EXPECT_TRUE(dom.Dominates(head, body));
  EXPECT_TRUE(dom.Dominates(head, exit));
  EXPECT_FALSE(dom.Dominates(body, exit));
}

// ---------------------------------------------------------------------------
// Property tests on random CFGs.
// ---------------------------------------------------------------------------

// Builds a random function with `num_blocks` blocks whose terminators are a
// random mix of br/jmp/ret (always at least one ret reachable shape-wise).
std::unique_ptr<Module> RandomCfgModule(uint64_t seed, uint32_t num_blocks) {
  Rng rng(seed);
  auto module = std::make_unique<Module>();
  IrBuilder b(*module);
  b.StartFunction("main", 0);
  std::vector<BlockId> blocks;
  blocks.push_back(0);
  for (uint32_t i = 1; i < num_blocks; ++i) {
    blocks.push_back(b.NewBlock("b" + std::to_string(i)).id());
  }
  for (uint32_t i = 0; i < num_blocks; ++i) {
    b.SetInsertBlock(blocks[i]);
    const Reg cond = b.Const(static_cast<int64_t>(rng.NextBelow(2)));
    const uint64_t kind = i + 1 == num_blocks ? 2 : rng.NextBelow(3);
    if (kind == 0) {
      b.Br(cond, blocks[rng.NextBelow(num_blocks)], blocks[rng.NextBelow(num_blocks)]);
    } else if (kind == 1) {
      b.Jmp(blocks[rng.NextBelow(num_blocks)]);
    } else {
      b.Ret();
    }
  }
  return module;
}

// Reference dominance: a dominates b iff removing a from the graph makes b
// unreachable from the entry (for reachable a, b).
bool RefDominates(const Cfg& cfg, BlockId a, BlockId b) {
  if (a == b) {
    return true;
  }
  std::set<BlockId> visited;
  std::vector<BlockId> stack;
  if (0 != a) {
    stack.push_back(0);
    visited.insert(0);
  }
  while (!stack.empty()) {
    const BlockId node = stack.back();
    stack.pop_back();
    if (node == b) {
      return false;  // reached b while avoiding a
    }
    for (BlockId succ : cfg.succs(node)) {
      if (succ != a && visited.insert(succ).second) {
        stack.push_back(succ);
      }
    }
  }
  return true;
}

class RandomCfgSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCfgSweep, DominanceMatchesReachabilityDefinition) {
  auto module = RandomCfgModule(GetParam(), 8);
  Cfg cfg(module->function(0));
  DominatorTree dom = DominatorTree::ComputeDominators(cfg);
  for (BlockId a = 0; a < cfg.num_blocks(); ++a) {
    for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
      if (!cfg.IsReachable(a) || !cfg.IsReachable(b)) {
        continue;
      }
      EXPECT_EQ(dom.Dominates(a, b), RefDominates(cfg, a, b))
          << "a=" << a << " b=" << b << " seed=" << GetParam();
    }
  }
}

TEST_P(RandomCfgSweep, EntryDominatesEveryReachableBlock) {
  auto module = RandomCfgModule(GetParam(), 10);
  Cfg cfg(module->function(0));
  DominatorTree dom = DominatorTree::ComputeDominators(cfg);
  for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
    if (cfg.IsReachable(b)) {
      EXPECT_TRUE(dom.Dominates(0, b)) << "block " << b;
    }
  }
}

TEST_P(RandomCfgSweep, IdomIsStrictDominatorAndTreeIsAcyclic) {
  auto module = RandomCfgModule(GetParam(), 10);
  Cfg cfg(module->function(0));
  DominatorTree dom = DominatorTree::ComputeDominators(cfg);
  for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
    if (!cfg.IsReachable(b) || b == 0) {
      continue;
    }
    const BlockId up = dom.idom(b);
    ASSERT_NE(up, kNoBlock);
    EXPECT_TRUE(dom.StrictlyDominates(up, b));
    // Walking idoms from any block must reach the entry without cycling.
    BlockId node = b;
    size_t hops = 0;
    while (node != 0) {
      node = dom.idom(node);
      ASSERT_LE(++hops, cfg.num_blocks());
    }
  }
}

TEST_P(RandomCfgSweep, PostdominatorsMirrorDominatorsOnReverseGraph) {
  auto module = RandomCfgModule(GetParam(), 8);
  Cfg cfg(module->function(0));
  DominatorTree pdom = DominatorTree::ComputePostDominators(cfg);
  // Definition check: a pdom b iff every path from b to any exit passes
  // through a. Verify via path search avoiding a.
  auto ref_postdominates = [&](BlockId a, BlockId b) {
    if (a == b) {
      return true;
    }
    std::set<BlockId> visited{b};
    std::vector<BlockId> stack{b};
    if (b == a) {
      return true;
    }
    while (!stack.empty()) {
      const BlockId node = stack.back();
      stack.pop_back();
      const auto& succs = cfg.succs(node);
      if (succs.empty()) {
        return false;  // reached an exit while avoiding a
      }
      for (BlockId succ : succs) {
        if (succ != a && visited.insert(succ).second) {
          stack.push_back(succ);
        }
      }
    }
    return true;
  };
  for (BlockId a = 0; a < cfg.num_blocks(); ++a) {
    for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
      // Restrict to blocks that can reach an exit (pdom-reachable).
      if (pdom.idom(a) == kNoBlock || pdom.idom(b) == kNoBlock) {
        continue;
      }
      EXPECT_EQ(pdom.Dominates(a, b), ref_postdominates(a, b))
          << "a=" << a << " b=" << b << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCfgSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47, 91, 133));

}  // namespace
}  // namespace gist
