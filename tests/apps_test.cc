// Per-app validation: every reproduced bug builds a verifiable module, shows
// both failing and successful production runs, and is diagnosable end-to-end
// by the cooperative fleet (sketch covering the known root cause).

#include <gtest/gtest.h>

#include <set>

#include "src/apps/app.h"
#include "src/coop/fleet.h"
#include "src/ir/parser.h"
#include "src/ir/verifier.h"

namespace gist {
namespace {

class AppSweep : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    app_ = MakeAppByName(GetParam());
    ASSERT_NE(app_, nullptr) << "unknown app " << GetParam();
  }

  std::unique_ptr<BugApp> app_;
};

TEST_P(AppSweep, ModuleVerifies) {
  EXPECT_TRUE(VerifyModule(app_->module()).ok());
}

TEST_P(AppSweep, MetadataPopulated) {
  const BugInfo& info = app_->info();
  EXPECT_FALSE(info.name.empty());
  EXPECT_FALSE(info.software.empty());
  EXPECT_FALSE(info.kind.empty());
  EXPECT_GT(info.original_loc, 0u);
  EXPECT_FALSE(app_->ideal_sketch().instrs.empty());
  EXPECT_FALSE(app_->root_cause_instrs().empty());
}

TEST_P(AppSweep, RootCauseIsSubsetOfIdeal) {
  const std::set<InstrId> ideal(app_->ideal_sketch().instrs.begin(),
                                app_->ideal_sketch().instrs.end());
  for (InstrId id : app_->root_cause_instrs()) {
    EXPECT_TRUE(ideal.count(id)) << "root-cause instr " << id << " missing from ideal sketch";
  }
}

TEST_P(AppSweep, IdealInstrsAreValid) {
  for (InstrId id : app_->ideal_sketch().instrs) {
    ASSERT_LT(id, app_->module().num_instructions());
  }
  for (InstrId id : app_->ideal_sketch().access_order) {
    EXPECT_TRUE(app_->module().instr(id).IsSharedAccess())
        << "access-order entry " << id << " is not a load/store";
  }
}

TEST_P(AppSweep, WorkloadsProduceBothOutcomes) {
  Rng rng(2024);
  int failing = 0;
  int successful = 0;
  for (uint64_t run = 0; run < 300 && (failing == 0 || successful == 0); ++run) {
    const Workload workload = app_->MakeWorkload(run, rng);
    Vm vm(app_->module(), workload, VmOptions{});
    const RunResult result = vm.Run();
    if (result.ok()) {
      ++successful;
    } else {
      ++failing;
      EXPECT_NE(result.failure.failing_instr, kNoInstr);
    }
  }
  EXPECT_GT(failing, 0) << app_->info().name << ": bug never manifested";
  EXPECT_GT(successful, 0) << app_->info().name << ": bug manifested always";
}

TEST_P(AppSweep, WorkloadsAreDeterministic) {
  Rng rng1(7);
  Rng rng2(7);
  for (uint64_t run = 0; run < 10; ++run) {
    const Workload a = app_->MakeWorkload(run, rng1);
    const Workload b = app_->MakeWorkload(run, rng2);
    EXPECT_EQ(a.schedule_seed, b.schedule_seed);
    EXPECT_EQ(a.inputs, b.inputs);
  }
}

TEST_P(AppSweep, FleetDiagnosesRootCause) {
  FleetOptions options;
  options.runs_per_iteration = 400;
  options.max_iterations = 8;
  options.fleet_seed = 11;
  Fleet fleet(
      app_->module(),
      [this](uint64_t run_index, Rng& rng) { return app_->MakeWorkload(run_index, rng); },
      options);

  const std::vector<InstrId>& root_cause = app_->root_cause_instrs();
  FleetResult result = fleet.Run([&](const FailureSketch& sketch) {
    for (InstrId id : root_cause) {
      if (!sketch.Contains(id)) {
        return false;
      }
    }
    return true;
  });

  ASSERT_TRUE(result.first_failure_found) << app_->info().name;
  EXPECT_TRUE(result.root_cause_found)
      << app_->info().name << ": sketch missed the root cause after "
      << result.iterations.size() << " AsT iterations (sigma " << result.sigma_final << ")";
  EXPECT_GT(result.failure_recurrences, 0u);
  EXPECT_FALSE(result.sketch.statements.empty());
  EXPECT_TRUE(result.sketch.statements.back().is_failure_point);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppSweep,
                         ::testing::Values("apache-1", "apache-2", "apache-3", "apache-4",
                                           "cppcheck-1", "cppcheck-2", "curl", "transmission",
                                           "sqlite", "memcached", "pbzip2"));

TEST_P(AppSweep, ModulePrintsAndReparses) {
  // The textual printer round-trips every app module: same shape, verified,
  // and a second print is a fixpoint. This stress-tests the parser/printer
  // pair on the largest real modules in the repository.
  const std::string printed = app_->module().ToString();
  auto reparsed = ParseModule(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message();
  EXPECT_EQ((*reparsed)->num_functions(), app_->module().num_functions());
  EXPECT_EQ((*reparsed)->num_globals(), app_->module().num_globals());
  EXPECT_EQ((*reparsed)->num_instructions(), app_->module().num_instructions());
  EXPECT_TRUE(VerifyModule(**reparsed).ok());
  EXPECT_EQ((*reparsed)->ToString(), printed);
}

TEST_P(AppSweep, ReparsedModuleBehavesIdentically) {
  auto reparsed = ParseModule(app_->module().ToString());
  ASSERT_TRUE(reparsed.ok());
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Workload workload = app_->MakeWorkload(static_cast<uint64_t>(i), rng);
    Vm original(app_->module(), workload, VmOptions{});
    Vm clone(**reparsed, workload, VmOptions{});
    const RunResult a = original.Run();
    const RunResult b = clone.Run();
    EXPECT_EQ(a.ok(), b.ok());
    EXPECT_EQ(a.outputs, b.outputs);
    if (!a.ok() && !b.ok()) {
      // Instruction ids renumber across a print/reparse round trip (text is
      // in block order, the builder emitted in insertion order), so compare
      // the failing statement by opcode + source position instead.
      EXPECT_EQ(a.failure.type, b.failure.type);
      const Instruction& fa = app_->module().instr(a.failure.failing_instr);
      const Instruction& fb = (*reparsed)->instr(b.failure.failing_instr);
      EXPECT_EQ(fa.op, fb.op);
      EXPECT_EQ(fa.loc.function, fb.loc.function);
    }
  }
}

TEST(AppsRegistryTest, AllAppsPresent) {
  auto apps = MakeAllApps();
  EXPECT_EQ(apps.size(), 11u);
  std::set<std::string> names;
  for (const auto& app : apps) {
    names.insert(app->info().name);
  }
  EXPECT_EQ(names.size(), 11u);
}

TEST(AppsRegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeAppByName("no-such-bug"), nullptr);
}

}  // namespace
}  // namespace gist
