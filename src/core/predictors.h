// Failure predictors and their extraction from run traces (paper §3.3).
//
// Gist tracks three predictor families:
//   * branch predictors  — (branch statement, outcome), from decoded PT;
//   * value predictors   — (access statement, data value), from watchpoints;
//   * concurrency predictors — observed inter-thread access patterns on one
//     shared address, from the watchpoint total order: adjacent pairs from
//     different threads (WW / WR / RW — data race & order patterns) and
//     adjacent T1-T2-T1 triples (RWR / WWR / RWW / WRW — the single-variable
//     atomicity-violation patterns of Fig. 5).
//
// Each distinct predictor is counted at most once per run; the statistics
// layer correlates per-run presence with the run's outcome.

#ifndef GIST_SRC_CORE_PREDICTORS_H_
#define GIST_SRC_CORE_PREDICTORS_H_

#include <string>
#include <tuple>
#include <vector>

#include "src/hw/watchpoints.h"
#include "src/ir/module.h"
#include "src/pt/decoder.h"

namespace gist {

enum class PredictorKind : uint8_t {
  kBranch,
  kValue,
  // Range/inequality predicate on a data value (the paper's §6 future work):
  // sign buckets value < 0 / == 0 / > 0, which catch whole failure classes
  // ("bandwidth went negative") that exact-value predictors fragment across
  // many distinct values.
  kValueSign,
  kRWR,  // atomicity violations (Fig. 5)
  kWWR,
  kRWW,
  kWRW,
  kWW,  // race / order patterns (Fig. 6)
  kWR,
  kRW,
};

const char* PredictorKindName(PredictorKind kind);
bool IsConcurrencyPredictor(PredictorKind kind);
// The single-variable atomicity-violation patterns of Fig. 5, plus WW (a
// write-write race is serializable by the same lock insertion).
bool IsAtomicityPattern(PredictorKind kind);

struct Predictor {
  PredictorKind kind = PredictorKind::kBranch;
  // Statements involved: branch/value use `a`; pair patterns use `a, b`;
  // triple patterns use `a, b, c` (in observed order).
  InstrId a = kNoInstr;
  InstrId b = kNoInstr;
  InstrId c = kNoInstr;
  Word value = 0;      // kValue: the observed data value; kValueSign: -1/0/+1
  bool taken = false;  // kBranch: the observed outcome

  auto Key() const { return std::make_tuple(kind, a, b, c, value, taken); }
  bool operator==(const Predictor& other) const { return Key() == other.Key(); }
  bool operator<(const Predictor& other) const { return Key() < other.Key(); }
};

std::string PredictorToString(const Predictor& predictor, const Module& module);

// Extracts the deduplicated predictor set of one run.
std::vector<Predictor> ExtractPredictors(const std::vector<DecodedCoreTrace>& control_flow,
                                         const std::vector<WatchEvent>& data_flow);
// Pointer-view flavor for callers holding shared cached decodes (named
// distinctly: a braced-init-list argument would make an overload ambiguous).
std::vector<Predictor> ExtractPredictorsViews(
    const std::vector<const DecodedCoreTrace*>& control_flow,
    const std::vector<WatchEvent>& data_flow);

}  // namespace gist

#endif  // GIST_SRC_CORE_PREDICTORS_H_
