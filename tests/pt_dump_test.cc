#include <gtest/gtest.h>

#include "src/ir/parser.h"
#include "src/pt/dump.h"
#include "src/pt/tracer.h"
#include "src/vm/vm.h"

namespace gist {
namespace {

std::unique_ptr<Module> TinyProgram() {
  auto module = ParseModule(R"(
func main() {
entry:
  r0 = input 0
  br r0, ^a, ^b
a:
  jmp ^exit
b:
  jmp ^exit
exit:
  ret
}
)");
  EXPECT_TRUE(module.ok());
  return std::move(*module);
}

TEST(PtDumpTest, PacketKindsRendered) {
  auto module = TinyProgram();
  PtBuffer buffer(1024);
  buffer.AppendPsb();
  buffer.AppendPip(3);
  buffer.AppendPge(PtIp{0, 0, 0});
  buffer.AppendTnt(0b101, 3);
  buffer.AppendTip(PtEndIp());
  buffer.AppendPgd(PtIp{0, 3, 0});
  const std::string dump = DumpPtStream(*module, buffer.bytes());
  EXPECT_NE(dump.find("PSB"), std::string::npos);
  EXPECT_NE(dump.find("PIP      tid=3"), std::string::npos);
  EXPECT_NE(dump.find("TIP.PGE  ip=main:^entry:0"), std::string::npos);
  EXPECT_NE(dump.find("TNT      TNT (3)"), std::string::npos);
  EXPECT_NE(dump.find("<thread-end>"), std::string::npos);
  EXPECT_NE(dump.find("TIP.PGD  ip=main:^exit:0"), std::string::npos);
}

TEST(PtDumpTest, MalformedStreamReported) {
  auto module = TinyProgram();
  std::vector<uint8_t> bogus{0xee, 0x01};
  const std::string dump = DumpPtStream(*module, bogus);
  EXPECT_NE(dump.find("malformed"), std::string::npos);
}

TEST(PtDumpTest, RealTraceDumpsAndDecodes) {
  auto module = TinyProgram();
  PtTracer tracer(1, kDefaultPtBufferBytes, /*always_on=*/true);
  VmOptions options;
  options.num_cores = 1;
  options.observers = {&tracer};
  Workload workload;
  workload.inputs = {1};
  Vm(*module, workload, options).Run();
  tracer.FlushAllPending();

  const std::string dump = DumpPtStream(*module, tracer.buffer(0).bytes());
  EXPECT_NE(dump.find("TIP.PGE"), std::string::npos);
  EXPECT_NE(dump.find("TNT"), std::string::npos);

  auto decoded = DecodePtStream(*module, 0, tracer.buffer(0).bytes());
  ASSERT_TRUE(decoded.ok());
  const std::string trace_dump = DumpDecodedTrace(*module, *decoded);
  EXPECT_NE(trace_dump.find("core 0"), std::string::npos);
  EXPECT_NE(trace_dump.find("main:^a"), std::string::npos);  // taken side
  EXPECT_EQ(trace_dump.find("main:^b"), std::string::npos);  // not-taken side absent
}

TEST(PtDumpTest, BadIpRenderedDefensively) {
  auto module = TinyProgram();
  PtPacket packet;
  packet.kind = PtPacketKind::kTip;
  packet.ip = PtIp{42, 0, 0};  // function out of range
  EXPECT_NE(PtPacketToString(packet, *module).find("<bad f42>"), std::string::npos);
}

}  // namespace
}  // namespace gist
