#include "src/obs/profiler.h"

#include <algorithm>
#include <cstdlib>

#include "src/hw/perf_model.h"
#include "src/ir/module.h"
#include "src/obs/metrics.h"
#include "src/support/check.h"
#include "src/support/str.h"
#include "src/vm/decoded_module.h"
#include "src/vm/superinstr.h"

namespace gist {
namespace {

// Virtual cycles one debug trap costs in the perf model (CostModel::
// cycles_per_watch_trap); the profile keeps it integral so exports stay
// bit-stable.
uint64_t TrapCycles() {
  return static_cast<uint64_t>(CostModel{}.cycles_per_watch_trap);
}

// Event classes in ObservedEvents bit order; the names label the dispatch
// breakdown in the JSON export.
constexpr const char* kEventNames[7] = {
    "context_switch", "block_enter", "branch",          "mem_access",
    "return",         "instr_retired", "thread_lifecycle",
};

// JSON string escape for function names / labels / app titles. The IR only
// produces identifier-ish names, but app titles are free text.
std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string U64(uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

}  // namespace

void HotPathProfiler::Attach(const DecodedModule& decoded, std::string app) {
  attached_ = true;
  app_ = std::move(app);
  info_.clear();
  info_.reserve(decoded.num_blocks());
  total_ = BlockProfile{};
  total_.EnsureSize(decoded.num_blocks());
  runs_ = 0;
  std::fill(std::begin(events_), std::end(events_), 0);
  masks_.clear();
  watch_denied_arms_ = 0;
  watch_slot_arms_.clear();
  watch_slot_traps_.clear();
  watch_traps_by_instr_.clear();

  const Module& module = decoded.module();
  for (FunctionId fid = 0; fid < decoded.num_functions(); ++fid) {
    const DecodedFunction& function = decoded.function(fid);
    const Function& source = module.function(fid);
    for (const DecodedBlock& block : function.blocks) {
      GIST_CHECK_EQ(static_cast<size_t>(block.profile_index), info_.size());
      BlockStatic info;
      info.function = source.name();
      info.label = source.block(block.id).label();
      info.size = block.size;
      info.fusable = IsFusableBlock(block);
      if (block.size > 0) {
        const DecodedInstr& last = block.instrs[block.size - 1];
        if (last.op == Opcode::kBr) {
          info.taken = last.target0->profile_index;
          info.not_taken = last.target1->profile_index;
        } else if (last.op == Opcode::kJmp) {
          info.jump = last.target0->profile_index;
        }
      }
      info_.push_back(std::move(info));
    }
  }
}

void HotPathProfiler::AddRun(const BlockProfile& blocks, const ProfiledRunSample& sample) {
  GIST_CHECK(attached_) << "HotPathProfiler::AddRun before Attach";
  total_.Merge(blocks);
  ++runs_;

  const uint64_t class_counts[7] = {
      sample.context_switches, sample.block_enters, sample.branches, sample.mem_accesses,
      sample.returns,          sample.retired,      sample.thread_events,
  };
  for (uint32_t bit = 0; bit < 7; ++bit) {
    events_[bit] += class_counts[bit];
  }
  for (uint32_t mask : sample.observer_masks) {
    MaskCost& cost = masks_[mask];
    ++cost.observers;
    for (uint32_t bit = 0; bit < 7; ++bit) {
      if (mask & (1u << bit)) {
        cost.selected += class_counts[bit];
      }
    }
  }

  watch_denied_arms_ += sample.watch_denied_arms;
  if (watch_slot_arms_.size() < sample.watch_slot_arms.size()) {
    watch_slot_arms_.resize(sample.watch_slot_arms.size(), 0);
    watch_slot_traps_.resize(sample.watch_slot_arms.size(), 0);
  }
  for (size_t i = 0; i < sample.watch_slot_arms.size(); ++i) {
    watch_slot_arms_[i] += sample.watch_slot_arms[i];
  }
  for (size_t i = 0; i < sample.watch_slot_traps.size(); ++i) {
    watch_slot_traps_[i] += sample.watch_slot_traps[i];
  }
  for (const auto& [instr, traps] : sample.watch_traps_by_instr) {
    watch_traps_by_instr_[instr] += traps;
  }
}

std::string HotPathProfiler::ProfileJson() const {
  std::string out = "{\n";
  out += "  \"schema\": \"gist.profile.v1\",\n";
  out += "  \"app\": \"" + EscapeJson(app_) + "\",\n";
  out += "  \"runs\": " + U64(runs_) + ",\n";

  // Superinstruction-tier selection over this aggregated profile: a block is
  // "fused" when its shape permits fusion and its retired mass clears the
  // tier's default threshold — the exact predicate FusedModule::Build applies
  // (src/vm/superinstr.h), so the export and the tier can never disagree.
  auto fused = [&](size_t i) {
    return info_[i].fusable && total_.retired[i] >= kSuperMinBlockRetired;
  };

  uint64_t retired = 0;
  uint64_t entries = 0;
  uint64_t taken = 0;
  uint64_t not_taken = 0;
  uint64_t executed = 0;
  uint64_t fused_retired = 0;
  uint64_t fused_blocks = 0;
  for (size_t i = 0; i < info_.size(); ++i) {
    retired += total_.retired[i];
    entries += total_.exec[i];
    taken += total_.taken[i];
    not_taken += total_.not_taken[i];
    executed += (total_.exec[i] != 0 || total_.retired[i] != 0) ? 1 : 0;
    if (fused(i)) {
      fused_retired += total_.retired[i];
      ++fused_blocks;
    }
  }
  out += "  \"totals\": {\"retired\": " + U64(retired) + ", \"block_entries\": " + U64(entries) +
         ", \"taken\": " + U64(taken) + ", \"not_taken\": " + U64(not_taken) +
         ", \"blocks_executed\": " + U64(executed) + ", \"blocks_total\": " + U64(info_.size()) +
         ", \"fused_retired\": " + U64(fused_retired) + ", \"fused_blocks\": " +
         U64(fused_blocks) + "},\n";

  // Per-block histogram, block-index (function-major) order; blocks a fleet
  // never touched are elided to keep profiles reviewable.
  out += "  \"blocks\": [";
  bool first = true;
  for (size_t i = 0; i < info_.size(); ++i) {
    if (total_.exec[i] == 0 && total_.retired[i] == 0) {
      continue;
    }
    out += StrFormat("%s\n    {\"id\": %zu, \"function\": \"%s\", \"block\": \"%s\", "
                     "\"size\": %u, \"exec\": %llu, \"retired\": %llu, \"taken\": %llu, "
                     "\"not_taken\": %llu, \"fused\": %d}",
                     first ? "" : ",", i, EscapeJson(info_[i].function).c_str(),
                     EscapeJson(info_[i].label).c_str(), info_[i].size,
                     static_cast<unsigned long long>(total_.exec[i]),
                     static_cast<unsigned long long>(total_.retired[i]),
                     static_cast<unsigned long long>(total_.taken[i]),
                     static_cast<unsigned long long>(total_.not_taken[i]), fused(i) ? 1 : 0);
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";

  // CFG edge profile: one entry per traversed edge, source-index order.
  out += "  \"edges\": [";
  first = true;
  auto edge = [&](size_t from, uint32_t to, const char* kind, uint64_t count) {
    if (to == kNoSuccessor || count == 0) {
      return;
    }
    out += StrFormat("%s\n    {\"from\": %zu, \"to\": %u, \"kind\": \"%s\", \"count\": %llu}",
                     first ? "" : ",", from, to, kind,
                     static_cast<unsigned long long>(count));
    first = false;
  };
  for (size_t i = 0; i < info_.size(); ++i) {
    edge(i, info_[i].taken, "taken", total_.taken[i]);
    edge(i, info_[i].not_taken, "not_taken", total_.not_taken[i]);
    // An unconditional jump is traversed once per entry of its block.
    edge(i, info_[i].jump, "jump", total_.exec[i]);
  }
  out += first ? "],\n" : "\n  ],\n";

  // Hot chains: seed at the hottest blocks by retired count, extend each
  // chain along its dominant outgoing edge — the block sequences a
  // superinstruction tier would fuse first (ROADMAP item 2).
  std::vector<uint32_t> order(info_.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (total_.retired[a] != total_.retired[b]) {
      return total_.retired[a] > total_.retired[b];
    }
    return a < b;  // deterministic tie-break
  });
  out += "  \"hot_chains\": [";
  first = true;
  std::vector<bool> seeded(info_.size(), false);
  uint32_t chains = 0;
  for (uint32_t seed : order) {
    if (chains >= options_.hot_chain_count || total_.retired[seed] == 0) {
      break;
    }
    if (seeded[seed]) {
      continue;  // already part of an earlier (hotter) chain
    }
    std::vector<uint32_t> chain;
    std::vector<bool> in_chain(info_.size(), false);
    uint64_t chain_retired = 0;
    uint32_t at = seed;
    while (chain.size() < options_.hot_chain_max_len && !in_chain[at]) {
      chain.push_back(at);
      in_chain[at] = true;
      seeded[at] = true;
      chain_retired += total_.retired[at];
      const BlockStatic& info = info_[at];
      uint32_t next = kNoSuccessor;
      uint64_t weight = 0;
      if (info.jump != kNoSuccessor) {
        next = info.jump;
        weight = total_.exec[at];
      } else if (info.taken != kNoSuccessor) {
        // Dominant side of the conditional; ties go to the taken edge.
        next = total_.taken[at] >= total_.not_taken[at] ? info.taken : info.not_taken;
        weight = std::max(total_.taken[at], total_.not_taken[at]);
      }
      if (next == kNoSuccessor || weight == 0) {
        break;
      }
      at = next;
    }
    ++chains;
    out += StrFormat("%s\n    {\"retired\": %llu, \"blocks\": [", first ? "" : ",",
                     static_cast<unsigned long long>(chain_retired));
    for (size_t i = 0; i < chain.size(); ++i) {
      out += StrFormat("%s\"%s:%s\"", i == 0 ? "" : ", ",
                       EscapeJson(info_[chain[i]].function).c_str(),
                       EscapeJson(info_[chain[i]].label).c_str());
    }
    out += "]}";
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";

  // Watchpoint-slot contention and trap-cost attribution (src/hw).
  const uint64_t trap_cycles = TrapCycles();
  out += "  \"watch\": {\"cycles_per_trap\": " + U64(trap_cycles) +
         ", \"denied_arms\": " + U64(watch_denied_arms_) + ", \"slots\": [";
  for (size_t i = 0; i < watch_slot_arms_.size(); ++i) {
    out += StrFormat("%s{\"slot\": %zu, \"arms\": %llu, \"traps\": %llu}", i == 0 ? "" : ", ", i,
                     static_cast<unsigned long long>(watch_slot_arms_[i]),
                     static_cast<unsigned long long>(watch_slot_traps_[i]));
  }
  out += "], \"by_instr\": [";
  first = true;
  for (const auto& [instr, traps] : watch_traps_by_instr_) {
    out += StrFormat("%s{\"instr\": %u, \"traps\": %llu, \"cycles\": %llu}", first ? "" : ", ",
                     instr, static_cast<unsigned long long>(traps),
                     static_cast<unsigned long long>(traps * trap_cycles));
    first = false;
  }
  out += "]},\n";

  // Observer-dispatch cost per subscriber mask, from the declared masks and
  // the mode-independent event tallies.
  out += "  \"dispatch\": {\"events\": {";
  for (uint32_t bit = 0; bit < 7; ++bit) {
    out += StrFormat("%s\"%s\": %llu", bit == 0 ? "" : ", ", kEventNames[bit],
                     static_cast<unsigned long long>(events_[bit]));
  }
  out += "}, \"masks\": [";
  first = true;
  for (const auto& [mask, cost] : masks_) {
    out += StrFormat("%s{\"mask\": %u, \"observers\": %llu, \"selected\": %llu}",
                     first ? "" : ", ", mask, static_cast<unsigned long long>(cost.observers),
                     static_cast<unsigned long long>(cost.selected));
    first = false;
  }
  out += "]}\n";
  out += "}\n";
  return out;
}

std::string HotPathProfiler::ProfileCollapsed() const {
  // Flamegraph collapsed-stack convention: "frame;frame;frame count". The
  // stack is app → function → block; only executed blocks emit a line.
  std::string out;
  for (size_t i = 0; i < info_.size(); ++i) {
    if (total_.retired[i] == 0) {
      continue;
    }
    out += app_ + ";" + info_[i].function + ";" + info_[i].label + " " +
           U64(total_.retired[i]) + "\n";
  }
  return out;
}

void HotPathProfiler::PublishSummary(MetricsRegistry* metrics) const {
  uint64_t retired = 0;
  uint64_t entries = 0;
  uint64_t taken = 0;
  uint64_t not_taken = 0;
  uint64_t executed = 0;
  for (size_t i = 0; i < total_.retired.size(); ++i) {
    retired += total_.retired[i];
    entries += total_.exec[i];
    taken += total_.taken[i];
    not_taken += total_.not_taken[i];
    executed += (total_.exec[i] != 0 || total_.retired[i] != 0) ? 1 : 0;
  }
  uint64_t traps = 0;
  for (uint64_t value : watch_slot_traps_) {
    traps += value;
  }
  metrics->Add("profile.runs", runs_);
  metrics->Add("profile.retired_total", retired);
  metrics->Add("profile.block_entries", entries);
  metrics->Add("profile.edges_taken", taken);
  metrics->Add("profile.edges_not_taken", not_taken);
  metrics->Add("profile.watch_traps_attributed", traps);
  metrics->Set("profile.blocks_executed", static_cast<int64_t>(executed));
  metrics->Set("profile.schema_version", 1);
}

// --- profile diff -----------------------------------------------------------

namespace {

// Minimal recursive-descent JSON reader, just enough to consume the
// profiler's own exports (objects, arrays, strings, unsigned integers,
// true/false/null). Rejecting anything else is fine: a baseline that does
// not round-trip through this reader is not a profile we wrote.
struct JsonValue {
  enum Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  uint64_t number = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [name, value] : fields) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char escaped = text_[pos_++];
        switch (escaped) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            c = static_cast<char>(
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default:
            c = escaped;  // \" \\ \/ and friends
        }
      }
      out->push_back(c);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      if (Consume('}')) {
        return true;
      }
      do {
        std::string key;
        JsonValue value;
        if (!ParseString(&key) || !Consume(':') || !ParseValue(&value)) {
          return false;
        }
        out->fields.emplace_back(std::move(key), std::move(value));
      } while (Consume(','));
      return Consume('}');
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      if (Consume(']')) {
        return true;
      }
      do {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->items.push_back(std::move(value));
      } while (Consume(','));
      return Consume(']');
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (c >= '0' && c <= '9') {
      out->kind = JsonValue::kNumber;
      uint64_t value = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        value = value * 10 + static_cast<uint64_t>(text_[pos_++] - '0');
      }
      out->number = value;
      return true;
    }
    auto literal = [&](const char* word, size_t len) {
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        return true;
      }
      return false;
    };
    if (literal("true", 4)) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false", 5)) {
      out->kind = JsonValue::kBool;
      return true;
    }
    if (literal("null", 4)) {
      return true;
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

struct BlockCount {
  uint64_t retired = 0;
  bool fused = false;  // the export's superinstruction-tier selection bit
};

struct ProfileTotals {
  uint64_t retired = 0;
  uint64_t fused_retired = 0;  // absent in pre-tier exports: reads as 0
};

// Parses one profile export into a (function;block -> counts) map plus the
// totals figures. Empty error on success.
bool LoadProfileBlocks(const std::string& json, const char* which,
                       std::map<std::string, BlockCount>* blocks, ProfileTotals* total,
                       std::string* error) {
  JsonValue root;
  if (!JsonReader(json).Parse(&root) || root.kind != JsonValue::kObject) {
    *error = StrFormat("%s: not valid JSON", which);
    return false;
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::kString ||
      schema->str != "gist.profile.v1") {
    *error = StrFormat("%s: missing or unsupported schema tag (want gist.profile.v1)", which);
    return false;
  }
  const JsonValue* totals = root.Find("totals");
  const JsonValue* retired = totals != nullptr ? totals->Find("retired") : nullptr;
  const JsonValue* array = root.Find("blocks");
  if (retired == nullptr || retired->kind != JsonValue::kNumber || array == nullptr ||
      array->kind != JsonValue::kArray) {
    *error = StrFormat("%s: missing totals.retired or blocks", which);
    return false;
  }
  total->retired = retired->number;
  const JsonValue* fused_retired = totals->Find("fused_retired");
  if (fused_retired != nullptr && fused_retired->kind == JsonValue::kNumber) {
    total->fused_retired = fused_retired->number;
  }
  for (const JsonValue& block : array->items) {
    const JsonValue* function = block.Find("function");
    const JsonValue* label = block.Find("block");
    const JsonValue* count = block.Find("retired");
    const JsonValue* fused = block.Find("fused");
    if (function == nullptr || label == nullptr || count == nullptr ||
        count->kind != JsonValue::kNumber) {
      *error = StrFormat("%s: malformed block entry", which);
      return false;
    }
    BlockCount& entry = (*blocks)[function->str + ";" + label->str];
    entry.retired += count->number;
    entry.fused = entry.fused || (fused != nullptr && fused->kind == JsonValue::kNumber &&
                                  fused->number != 0);
  }
  return true;
}

}  // namespace

ProfileDiffResult DiffProfiles(const std::string& baseline_json, const std::string& current_json,
                               const ProfileDiffOptions& options) {
  ProfileDiffResult result;
  std::map<std::string, BlockCount> before;
  std::map<std::string, BlockCount> after;
  ProfileTotals total_before;
  ProfileTotals total_after;
  if (!LoadProfileBlocks(baseline_json, "baseline", &before, &total_before, &result.error) ||
      !LoadProfileBlocks(current_json, "current", &after, &total_after, &result.error)) {
    return result;
  }
  result.parsed = true;

  struct Drift {
    std::string key;
    uint64_t before = 0;
    uint64_t after = 0;
    uint64_t permille = 0;  // relative drift vs the baseline count
    bool fused_before = false;
    bool fused_after = false;
  };
  std::vector<Drift> regressed;
  std::vector<Drift> improved;
  // Walk the union of keys; both maps are ordered, so the scan (and with it
  // the report) is deterministic.
  auto classify = [&](const std::string& key, const BlockCount& b, const BlockCount& a) {
    if (a.retired == b.retired) {
      return;
    }
    const uint64_t delta = a.retired > b.retired ? a.retired - b.retired : b.retired - a.retired;
    const uint64_t permille = delta * 1000 / std::max<uint64_t>(b.retired, 1);
    (a.retired > b.retired ? regressed : improved)
        .push_back(Drift{key, b.retired, a.retired, permille, b.fused, a.fused});
  };
  for (const auto& [key, count] : before) {
    const auto it = after.find(key);
    classify(key, count, it == after.end() ? BlockCount{} : it->second);
  }
  for (const auto& [key, count] : after) {
    if (before.find(key) == before.end()) {
      classify(key, BlockCount{}, count);
    }
  }

  auto by_delta = [](const Drift& a, const Drift& b) {
    const uint64_t da = a.after > a.before ? a.after - a.before : a.before - a.after;
    const uint64_t db = b.after > b.before ? b.after - b.before : b.before - b.after;
    if (da != db) {
      return da > db;
    }
    return a.key < b.key;
  };
  std::sort(regressed.begin(), regressed.end(), by_delta);
  std::sort(improved.begin(), improved.end(), by_delta);

  uint64_t worst_permille = 0;
  for (const std::vector<Drift>* side : {&regressed, &improved}) {
    for (const Drift& drift : *side) {
      worst_permille = std::max(worst_permille, drift.permille);
    }
  }
  result.ok = worst_permille <= options.max_drift_permille;

  result.report = StrFormat("totals.retired: %llu -> %llu; %zu block(s) regressed, %zu improved "
                            "(max drift %llu permille, allowed %llu)\n",
                            static_cast<unsigned long long>(total_before.retired),
                            static_cast<unsigned long long>(total_after.retired),
                            regressed.size(), improved.size(),
                            static_cast<unsigned long long>(worst_permille),
                            static_cast<unsigned long long>(options.max_drift_permille));
  // Superinstruction-tier coverage: how much of the profiled retired mass
  // sits inside would-be-fused blocks (permille, DESIGN.md §12). Informative,
  // never a gate — per-block retired drift above already catches any change.
  auto coverage = [](const ProfileTotals& totals) {
    return totals.retired == 0 ? 0 : totals.fused_retired * 1000 / totals.retired;
  };
  result.report += StrFormat("fused coverage: %llu -> %llu permille\n",
                             static_cast<unsigned long long>(coverage(total_before)),
                             static_cast<unsigned long long>(coverage(total_after)));
  auto report_side = [&](const char* title, const std::vector<Drift>& side) {
    if (side.empty()) {
      return;
    }
    result.report += StrFormat("top %s blocks:\n", title);
    for (size_t i = 0; i < side.size() && i < options.top_n; ++i) {
      const Drift& drift = side[i];
      result.report += StrFormat("  %-40s retired %llu -> %llu (%llu permille)  fused %d -> %d\n",
                                 drift.key.c_str(),
                                 static_cast<unsigned long long>(drift.before),
                                 static_cast<unsigned long long>(drift.after),
                                 static_cast<unsigned long long>(drift.permille),
                                 drift.fused_before ? 1 : 0, drift.fused_after ? 1 : 0);
    }
  };
  report_side("regressed", regressed);
  report_side("improved", improved);
  return result;
}

}  // namespace gist
