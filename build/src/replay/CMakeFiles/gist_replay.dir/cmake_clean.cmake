file(REMOVE_RECURSE
  "CMakeFiles/gist_replay.dir/recorder.cc.o"
  "CMakeFiles/gist_replay.dir/recorder.cc.o.d"
  "libgist_replay.a"
  "libgist_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
