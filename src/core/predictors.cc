#include "src/core/predictors.h"

#include <map>
#include <set>

#include "src/support/str.h"

namespace gist {

const char* PredictorKindName(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kBranch:
      return "branch";
    case PredictorKind::kValue:
      return "value";
    case PredictorKind::kValueSign:
      return "value-range";
    case PredictorKind::kRWR:
      return "RWR";
    case PredictorKind::kWWR:
      return "WWR";
    case PredictorKind::kRWW:
      return "RWW";
    case PredictorKind::kWRW:
      return "WRW";
    case PredictorKind::kWW:
      return "WW";
    case PredictorKind::kWR:
      return "WR";
    case PredictorKind::kRW:
      return "RW";
  }
  return "?";
}

bool IsConcurrencyPredictor(PredictorKind kind) {
  return kind != PredictorKind::kBranch && kind != PredictorKind::kValue &&
         kind != PredictorKind::kValueSign;
}

bool IsAtomicityPattern(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kRWR:
    case PredictorKind::kWWR:
    case PredictorKind::kRWW:
    case PredictorKind::kWRW:
    case PredictorKind::kWW:
      return true;
    default:
      return false;
  }
}

std::string PredictorToString(const Predictor& predictor, const Module& module) {
  auto stmt = [&](InstrId id) {
    if (id == kNoInstr) {
      return std::string("?");
    }
    const Instruction& instr = module.instr(id);
    if (!instr.loc.text.empty()) {
      return StrFormat("%s:%u \"%s\"", instr.loc.function.c_str(), instr.loc.line,
                       instr.loc.text.c_str());
    }
    return StrFormat("#%u", id);
  };
  switch (predictor.kind) {
    case PredictorKind::kBranch:
      return StrFormat("branch %s %s", stmt(predictor.a).c_str(),
                       predictor.taken ? "taken" : "not-taken");
    case PredictorKind::kValue:
      return StrFormat("value %s == %lld", stmt(predictor.a).c_str(),
                       static_cast<long long>(predictor.value));
    case PredictorKind::kValueSign:
      return StrFormat("value %s %s", stmt(predictor.a).c_str(),
                       predictor.value < 0   ? "< 0"
                       : predictor.value > 0 ? "> 0"
                                             : "== 0");
    default:
      break;
  }
  std::string out = StrFormat("%s pattern: %s -> %s", PredictorKindName(predictor.kind),
                              stmt(predictor.a).c_str(), stmt(predictor.b).c_str());
  if (predictor.c != kNoInstr) {
    out += " -> " + stmt(predictor.c);
  }
  return out;
}

namespace {

PredictorKind PairKind(bool first_write, bool second_write) {
  if (first_write && second_write) {
    return PredictorKind::kWW;
  }
  if (first_write) {
    return PredictorKind::kWR;
  }
  if (second_write) {
    return PredictorKind::kRW;
  }
  // Read-read pairs are benign; the caller filters them out.
  GIST_UNREACHABLE("RR pair is not a predictor");
}

// Maps the (rw, rw, rw) signature of a T1-T2-T1 triple to a Fig. 5 pattern,
// or returns false if the signature is not one of the four.
bool TripleKind(bool w1, bool w2, bool w3, PredictorKind* out) {
  if (!w1 && w2 && !w3) {
    *out = PredictorKind::kRWR;
    return true;
  }
  if (w1 && w2 && !w3) {
    *out = PredictorKind::kWWR;
    return true;
  }
  if (!w1 && w2 && w3) {
    *out = PredictorKind::kRWW;
    return true;
  }
  if (w1 && !w2 && w3) {
    *out = PredictorKind::kWRW;
    return true;
  }
  return false;
}

}  // namespace

std::vector<Predictor> ExtractPredictors(const std::vector<DecodedCoreTrace>& control_flow,
                                         const std::vector<WatchEvent>& data_flow) {
  std::vector<const DecodedCoreTrace*> view;
  view.reserve(control_flow.size());
  for (const DecodedCoreTrace& trace : control_flow) view.push_back(&trace);
  return ExtractPredictorsViews(view, data_flow);
}

std::vector<Predictor> ExtractPredictorsViews(
    const std::vector<const DecodedCoreTrace*>& control_flow,
    const std::vector<WatchEvent>& data_flow) {
  std::set<Predictor> found;

  // Branch predictors from the decoded control flow.
  for (const DecodedCoreTrace* trace : control_flow) {
    for (const PtBranch& branch : trace->branches) {
      Predictor predictor;
      predictor.kind = PredictorKind::kBranch;
      predictor.a = branch.instr;
      predictor.taken = branch.taken;
      found.insert(predictor);
    }
  }

  // Value predictors from the watchpoint log: the exact value plus its sign
  // bucket (range/inequality predicate, paper §6 future work).
  for (const WatchEvent& event : data_flow) {
    Predictor predictor;
    predictor.kind = PredictorKind::kValue;
    predictor.a = event.instr;
    predictor.value = event.value;
    found.insert(predictor);

    Predictor sign;
    sign.kind = PredictorKind::kValueSign;
    sign.a = event.instr;
    sign.value = event.value < 0 ? -1 : event.value > 0 ? 1 : 0;
    found.insert(sign);
  }

  // Concurrency predictors: group the (already totally ordered) watch log by
  // address, then scan adjacent pairs and triples.
  std::map<Addr, std::vector<const WatchEvent*>> by_addr;
  for (const WatchEvent& event : data_flow) {
    by_addr[event.addr].push_back(&event);
  }
  for (const auto& [addr, events] : by_addr) {
    (void)addr;
    // Pairs: adjacent conflicting accesses from different threads (the
    // race/order patterns of Fig. 6c/d).
    for (size_t i = 0; i + 1 < events.size(); ++i) {
      const WatchEvent& first = *events[i];
      const WatchEvent& second = *events[i + 1];
      if (first.tid != second.tid && (first.is_write || second.is_write)) {
        Predictor predictor;
        predictor.kind = PairKind(first.is_write, second.is_write);
        predictor.a = first.instr;
        predictor.b = second.instr;
        found.insert(predictor);
      }
    }
    // Triples: each access is paired with the same thread's previous access
    // to the variable and every remote access interleaved between the two —
    // the standard unserializable-interleaving reading of Fig. 5 (the remote
    // access breaks the local pair's atomicity whether or not it is strictly
    // adjacent to either end).
    std::map<ThreadId, size_t> previous_by_tid;
    for (size_t i = 0; i < events.size(); ++i) {
      const WatchEvent& current = *events[i];
      auto prev_it = previous_by_tid.find(current.tid);
      if (prev_it != previous_by_tid.end()) {
        for (size_t k = prev_it->second + 1; k < i; ++k) {
          const WatchEvent& local_prev = *events[prev_it->second];
          const WatchEvent& remote = *events[k];
          PredictorKind kind;
          if (remote.tid != current.tid &&
              TripleKind(local_prev.is_write, remote.is_write, current.is_write, &kind)) {
            Predictor predictor;
            predictor.kind = kind;
            predictor.a = local_prev.instr;
            predictor.b = remote.instr;
            predictor.c = current.instr;
            found.insert(predictor);
          }
        }
      }
      previous_by_tid[current.tid] = i;
    }
  }

  return std::vector<Predictor>(found.begin(), found.end());
}

}  // namespace gist
