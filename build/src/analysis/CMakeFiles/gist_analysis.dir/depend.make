# Empty dependencies file for gist_analysis.
# This may be replaced when dependencies are built.
