#include "src/cache/artifact_store.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/support/str.h"

namespace gist {
namespace {

namespace fs = std::filesystem;

// Disk record layout (gist.artifact.v1, little-endian):
//   magic[16] | kind u8 | hi u64 | lo u64 | payload_size u64 | checksum u64 | payload
// checksum = FNV-1a over the payload. Any mismatch between header fields,
// file size, and checksum quarantines the record.
constexpr char kMagic[16] = {'g', 'i', 's', 't', '.', 'a', 'r', 't',
                             'i', 'f', 'a', 'c', 't', '.', 'v', '1'};
constexpr size_t kHeaderBytes = sizeof(kMagic) + 1 + 8 + 8 + 8 + 8;
constexpr char kRecordSuffix[] = ".art";
constexpr char kQuarantineSuffix[] = ".corrupt";

void PutU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

uint64_t GetU64(const char* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  return value;
}

// Validates a whole record file's contents. On success fills *payload (may be
// null when only validation is wanted) and returns true.
bool ParseRecord(const std::string& file, const ArtifactKey* expect_key, std::string* payload) {
  if (file.size() < kHeaderBytes) return false;
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) return false;
  const char* p = file.data() + sizeof(kMagic);
  const uint8_t kind = static_cast<uint8_t>(*p++);
  if (kind >= kNumArtifactKinds) return false;
  const uint64_t hi = GetU64(p);
  p += 8;
  const uint64_t lo = GetU64(p);
  p += 8;
  const uint64_t payload_size = GetU64(p);
  p += 8;
  const uint64_t checksum = GetU64(p);
  p += 8;
  if (file.size() - kHeaderBytes != payload_size) return false;
  if (expect_key != nullptr) {
    if (kind != static_cast<uint8_t>(expect_key->kind) || hi != expect_key->hi ||
        lo != expect_key->lo) {
      return false;
    }
  }
  if (HashBytes(p, payload_size) != checksum) return false;
  if (payload != nullptr) payload->assign(p, payload_size);
  return true;
}

bool ReadWholeFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return in.good() || in.eof();
}

// "slice-0123456789abcdef0123456789abcdef.art"
std::string RecordFileName(const ArtifactKey& key) {
  return StrFormat("%s-%016llx%016llx%s", ArtifactKindName(key.kind),
                   static_cast<unsigned long long>(key.hi), static_cast<unsigned long long>(key.lo),
                   kRecordSuffix);
}

bool HasSuffix(const std::string& name, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
}

// "slice-<hex>.art" -> "slice"; empty when the name is not a record name.
std::string KindFromFileName(const std::string& name) {
  const size_t dash = name.find('-');
  if (dash == std::string::npos) return "";
  const std::string kind = name.substr(0, dash);
  for (size_t k = 0; k < kNumArtifactKinds; ++k) {
    if (kind == ArtifactKindName(static_cast<ArtifactKind>(k))) return kind;
  }
  return "";
}

void AppendStatLine(std::string* out, const std::string& key, uint64_t value, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += StrFormat("  \"%s\": %llu", key.c_str(), static_cast<unsigned long long>(value));
}

}  // namespace

const char* ArtifactKindName(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kSlice:
      return "slice";
    case ArtifactKind::kDecodedModule:
      return "decoded_module";
    case ArtifactKind::kTicfg:
      return "ticfg";
    case ArtifactKind::kPtDecode:
      return "pt_decode";
    case ArtifactKind::kPlanRotations:
      return "plan_rotations";
    case ArtifactKind::kPredictors:
      return "predictors";
    case ArtifactKind::kFusedTier:
      return "fused_tier";
  }
  return "unknown";
}

ArtifactKindStats StoreStats::Total() const {
  ArtifactKindStats total;
  for (const ArtifactKindStats& kind : kinds) {
    total.hits_mem += kind.hits_mem;
    total.hits_disk += kind.hits_disk;
    total.misses += kind.misses;
    total.inserts += kind.inserts;
    total.evictions += kind.evictions;
    total.disk_writes += kind.disk_writes;
    total.corrupt += kind.corrupt;
    total.verified += kind.verified;
    total.bytes += kind.bytes;
  }
  return total;
}

ArtifactStore::ArtifactStore(ArtifactStoreOptions options) : options_(std::move(options)) {
  GIST_CHECK(options_.shards > 0);
  const char* env = std::getenv("GIST_CACHE_VERIFY");
  verify_ = options_.verify || (env != nullptr && env[0] == '1');
  shard_budget_ = options_.mem_budget_bytes / options_.shards;
  shards_.reserve(options_.shards);
  for (uint32_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.disk_dir, ec);
    if (ec) {
      std::fprintf(stderr, "gist: cache dir %s unavailable (%s); disk tier disabled\n",
                   options_.disk_dir.c_str(), ec.message().c_str());
      options_.disk_dir.clear();
    }
  }
}

ArtifactStore::Shard& ArtifactStore::ShardFor(const ArtifactKey& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const void> ArtifactStore::LookupMemory(const ArtifactKey& key, const void* owner) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return nullptr;
  // An object-tier entry whose owner differs is a different live Module with
  // colliding content; treat as a miss so the insert replaces it.
  if (it->second.owner != owner) return nullptr;
  counters_[static_cast<size_t>(key.kind)].hits_mem += 1;
  return it->second.value;
}

void ArtifactStore::InsertMemory(const ArtifactKey& key, std::shared_ptr<const void> value,
                                 size_t bytes, const void* owner) {
  KindCounters& counters = counters_[static_cast<size_t>(key.kind)];
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // Replace in place (owner changed, or a concurrent build raced us): the
    // entry keeps its position in the insertion order.
    shard.bytes -= it->second.bytes;
    counters_[static_cast<size_t>(key.kind)].bytes -= static_cast<int64_t>(it->second.bytes);
    it->second.value = std::move(value);
    it->second.bytes = bytes;
    it->second.owner = owner;
    shard.bytes += bytes;
    counters.bytes += static_cast<int64_t>(bytes);
    return;
  }
  shard.order.push_back(key);
  Entry entry;
  entry.value = std::move(value);
  entry.bytes = bytes;
  entry.owner = owner;
  entry.order_it = std::prev(shard.order.end());
  shard.entries.emplace(key, std::move(entry));
  shard.bytes += bytes;
  counters.inserts += 1;
  counters.bytes += static_cast<int64_t>(bytes);
  // FIFO eviction: oldest insertions leave first, but the shard always keeps
  // its newest entry so one oversized artifact still serves its campaign.
  while (shard.bytes > shard_budget_ && shard.order.size() > 1) {
    const ArtifactKey victim_key = shard.order.front();
    auto victim = shard.entries.find(victim_key);
    GIST_CHECK(victim != shard.entries.end());
    shard.bytes -= victim->second.bytes;
    KindCounters& victim_counters = counters_[static_cast<size_t>(victim_key.kind)];
    victim_counters.evictions += 1;
    victim_counters.bytes -= static_cast<int64_t>(victim->second.bytes);
    shard.order.pop_front();
    shard.entries.erase(victim);
  }
}

bool ArtifactStore::ReadDiskRecord(const ArtifactKey& key, std::string* payload) {
  if (options_.disk_dir.empty()) return false;
  const std::string path = RecordPath(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return false;
  std::string file;
  if (!ReadWholeFile(path, &file)) {
    QuarantineDiskRecord(key, "record unreadable");
    return false;
  }
  if (!ParseRecord(file, &key, payload)) {
    QuarantineDiskRecord(key, "record failed validation");
    return false;
  }
  return true;
}

void ArtifactStore::WriteDiskRecord(const ArtifactKey& key, std::string_view payload) {
  if (options_.disk_dir.empty()) return;
  const std::string path = RecordPath(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    std::string header(kMagic, sizeof(kMagic));
    header.push_back(static_cast<char>(key.kind));
    PutU64(&header, key.hi);
    PutU64(&header, key.lo);
    PutU64(&header, payload.size());
    PutU64(&header, HashBytes(payload.data(), payload.size()));
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out.good()) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  counters_[static_cast<size_t>(key.kind)].disk_writes += 1;
}

void ArtifactStore::QuarantineDiskRecord(const ArtifactKey& key, const char* reason) {
  counters_[static_cast<size_t>(key.kind)].corrupt += 1;
  const std::string path = RecordPath(key);
  std::fprintf(stderr, "gist: quarantining cache record %s: %s\n", path.c_str(), reason);
  std::error_code ec;
  fs::rename(path, path + kQuarantineSuffix, ec);
  if (ec) fs::remove(path, ec);
}

void ArtifactStore::VerifyHit(const ArtifactKey& key, std::string_view cached,
                              std::string_view rebuilt) {
  GIST_CHECK(cached == rebuilt) << "GIST_CACHE_VERIFY: cached " << ArtifactKindName(key.kind)
                                << " artifact "
                                << StrFormat("%016llx%016llx", static_cast<unsigned long long>(key.hi),
                                             static_cast<unsigned long long>(key.lo))
                                << " differs from a fresh rebuild (cached " << cached.size()
                                << " bytes, rebuilt " << rebuilt.size() << " bytes)";
  counters_[static_cast<size_t>(key.kind)].verified += 1;
}

std::string ArtifactStore::RecordPath(const ArtifactKey& key) const {
  return (fs::path(options_.disk_dir) / RecordFileName(key)).string();
}

void ArtifactStore::PurgeOwner(const void* owner) {
  GIST_CHECK(owner != nullptr);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->order.begin(); it != shard->order.end();) {
      auto entry = shard->entries.find(*it);
      GIST_CHECK(entry != shard->entries.end());
      if (entry->second.owner != owner) {
        ++it;
        continue;
      }
      shard->bytes -= entry->second.bytes;
      counters_[static_cast<size_t>(it->kind)].bytes -= static_cast<int64_t>(entry->second.bytes);
      shard->entries.erase(entry);
      it = shard->order.erase(it);
    }
  }
}

void ArtifactStore::PurgeMemory() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->entries) {
      counters_[static_cast<size_t>(key.kind)].bytes -= static_cast<int64_t>(entry.bytes);
    }
    shard->entries.clear();
    shard->order.clear();
    shard->bytes = 0;
  }
}

StoreStats ArtifactStore::Snapshot() const {
  StoreStats stats;
  for (size_t k = 0; k < kNumArtifactKinds; ++k) {
    const KindCounters& counters = counters_[k];
    ArtifactKindStats& out = stats.kinds[k];
    out.hits_mem = counters.hits_mem.load();
    out.hits_disk = counters.hits_disk.load();
    out.misses = counters.misses.load();
    out.inserts = counters.inserts.load();
    out.evictions = counters.evictions.load();
    out.disk_writes = counters.disk_writes.load();
    out.corrupt = counters.corrupt.load();
    out.verified = counters.verified.load();
    const int64_t bytes = counters.bytes.load();
    out.bytes = bytes > 0 ? static_cast<uint64_t>(bytes) : 0;
  }
  return stats;
}

std::string ArtifactStore::StatsJson() const {
  const StoreStats stats = Snapshot();
  const ArtifactKindStats total = stats.Total();
  std::string out = "{\n";
  out += "  \"schema\": \"gist.cachestats.v1\"";
  bool first = false;
  for (size_t k = 0; k < kNumArtifactKinds; ++k) {
    const std::string name = ArtifactKindName(static_cast<ArtifactKind>(k));
    const ArtifactKindStats& kind = stats.kinds[k];
    AppendStatLine(&out, "cache.hits." + name, kind.hits(), &first);
    AppendStatLine(&out, "cache.hits_mem." + name, kind.hits_mem, &first);
    AppendStatLine(&out, "cache.hits_disk." + name, kind.hits_disk, &first);
    AppendStatLine(&out, "cache.misses." + name, kind.misses, &first);
    AppendStatLine(&out, "cache.inserts." + name, kind.inserts, &first);
    AppendStatLine(&out, "cache.evictions." + name, kind.evictions, &first);
    AppendStatLine(&out, "cache.disk_writes." + name, kind.disk_writes, &first);
    AppendStatLine(&out, "cache.corrupt." + name, kind.corrupt, &first);
    AppendStatLine(&out, "cache.verified." + name, kind.verified, &first);
    AppendStatLine(&out, "cache.bytes." + name, kind.bytes, &first);
  }
  AppendStatLine(&out, "cache.hits", total.hits(), &first);
  AppendStatLine(&out, "cache.misses", total.misses, &first);
  AppendStatLine(&out, "cache.evictions", total.evictions, &first);
  AppendStatLine(&out, "cache.corrupt", total.corrupt, &first);
  AppendStatLine(&out, "cache.verified", total.verified, &first);
  AppendStatLine(&out, "cache.bytes", total.bytes, &first);
  out += "\n}\n";
  return out;
}

void ArtifactStore::PublishStats(MetricsRegistry* metrics) const {
  const StoreStats stats = Snapshot();
  const ArtifactKindStats total = stats.Total();
  for (size_t k = 0; k < kNumArtifactKinds; ++k) {
    const std::string name = ArtifactKindName(static_cast<ArtifactKind>(k));
    const ArtifactKindStats& kind = stats.kinds[k];
    metrics->Add("cache.hits." + name, kind.hits());
    metrics->Add("cache.misses." + name, kind.misses);
    metrics->Add("cache.evictions." + name, kind.evictions);
    metrics->Set("cache.bytes." + name, static_cast<int64_t>(kind.bytes));
  }
  metrics->Add("cache.hits", total.hits());
  metrics->Add("cache.misses", total.misses);
  metrics->Add("cache.evictions", total.evictions);
  metrics->Set("cache.bytes", static_cast<int64_t>(total.bytes));
}

std::map<std::string, ArtifactStore::DiskScanEntry> ArtifactStore::ScanDisk(
    const std::string& dir) {
  std::map<std::string, DiskScanEntry> result;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!dirent.is_regular_file()) continue;
    const std::string name = dirent.path().filename().string();
    const std::string kind = KindFromFileName(name);
    if (kind.empty()) continue;
    if (HasSuffix(name, kQuarantineSuffix)) {
      result[kind].corrupt += 1;
      continue;
    }
    if (!HasSuffix(name, kRecordSuffix)) continue;
    DiskScanEntry& entry = result[kind];
    std::string file;
    if (!ReadWholeFile(dirent.path(), &file) || !ParseRecord(file, nullptr, nullptr)) {
      entry.corrupt += 1;
      continue;
    }
    entry.records += 1;
    entry.bytes += file.size();
  }
  return result;
}

uint64_t ArtifactStore::PurgeDisk(const std::string& dir) {
  uint64_t removed = 0;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!dirent.is_regular_file()) continue;
    const std::string name = dirent.path().filename().string();
    if (KindFromFileName(name).empty()) continue;
    if (!HasSuffix(name, kRecordSuffix) && !HasSuffix(name, kQuarantineSuffix)) continue;
    std::error_code remove_ec;
    if (fs::remove(dirent.path(), remove_ec) && !remove_ec) ++removed;
  }
  return removed;
}

}  // namespace gist
