// gist_faultsim unit tests: fault plans must be pure functions of
// (options, fleet_seed, run_index), payload application must be deterministic,
// and the simulated transport must behave like the taxonomy says.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/faultsim/faultsim.h"

namespace gist {
namespace {

bool PlansEqual(const FaultPlan& a, const FaultPlan& b) {
  return a.kill_run == b.kill_run && a.kill_after_steps == b.kill_after_steps &&
         a.truncate_pt == b.truncate_pt && a.truncate_keep_permille == b.truncate_keep_permille &&
         a.corrupt_pt == b.corrupt_pt && a.corrupt_bit_flips == b.corrupt_bit_flips &&
         a.drop_wire == b.drop_wire && a.reorder_wire == b.reorder_wire &&
         a.exhaust_watchpoints == b.exhaust_watchpoints &&
         a.granted_watchpoint_slots == b.granted_watchpoint_slots &&
         a.delay_result == b.delay_result && a.result_delay_seconds == b.result_delay_seconds &&
         a.payload_seed == b.payload_seed;
}

FaultOptions AllFaultsOptions(uint32_t permille) {
  FaultOptions options;
  options.enabled = true;
  options.kill_permille = permille;
  options.truncate_pt_permille = permille;
  options.corrupt_pt_permille = permille;
  options.drop_wire_permille = permille;
  options.reorder_wire_permille = permille;
  options.exhaust_watchpoints_permille = permille;
  options.delay_result_permille = permille;
  return options;
}

TEST(FaultPlanTest, DisabledOptionsDeriveTheEmptyPlan) {
  FaultOptions options = AllFaultsOptions(1000);
  options.enabled = false;
  for (uint64_t run = 0; run < 64; ++run) {
    EXPECT_FALSE(FaultPlan::ForRun(options, 7, run).any());
  }
}

TEST(FaultPlanTest, ZeroRatesDeriveTheEmptyPlan) {
  FaultOptions options;
  options.enabled = true;
  for (uint64_t run = 0; run < 64; ++run) {
    EXPECT_FALSE(FaultPlan::ForRun(options, 7, run).any());
  }
}

TEST(FaultPlanTest, DerivationIsPure) {
  const FaultOptions options = AllFaultsOptions(300);
  for (uint64_t run = 0; run < 32; ++run) {
    const FaultPlan once = FaultPlan::ForRun(options, 99, run);
    const FaultPlan again = FaultPlan::ForRun(options, 99, run);
    EXPECT_TRUE(PlansEqual(once, again)) << "run " << run;
  }
}

TEST(FaultPlanTest, RunsGetIndependentStreams) {
  const FaultOptions options = AllFaultsOptions(500);
  std::set<uint64_t> payload_seeds;
  for (uint64_t run = 0; run < 64; ++run) {
    payload_seeds.insert(FaultPlan::ForRun(options, 42, run).payload_seed);
  }
  // 64 distinct runs must not share payload streams.
  EXPECT_EQ(payload_seeds.size(), 64u);
}

TEST(FaultPlanTest, CertainRatesAlwaysFireWithinBounds) {
  FaultOptions options = AllFaultsOptions(1000);
  options.min_kill_steps = 100;
  options.max_kill_steps = 200;
  for (uint64_t run = 0; run < 32; ++run) {
    const FaultPlan plan = FaultPlan::ForRun(options, 5, run);
    EXPECT_TRUE(plan.kill_run);
    EXPECT_GE(plan.kill_after_steps, 100u);
    EXPECT_LE(plan.kill_after_steps, 200u);
    EXPECT_TRUE(plan.truncate_pt);
    EXPECT_LT(plan.truncate_keep_permille, 1000u);
    EXPECT_TRUE(plan.corrupt_pt);
    EXPECT_GE(plan.corrupt_bit_flips, 1u);
    EXPECT_TRUE(plan.exhaust_watchpoints);
    EXPECT_LT(plan.granted_watchpoint_slots, 4u);
    EXPECT_TRUE(plan.delay_result);
    EXPECT_GT(plan.result_delay_seconds, 0.0);
    EXPECT_LE(plan.result_delay_seconds, options.max_result_delay_seconds);
  }
}

TEST(FaultPlanTest, RatesApproximatelyHonored) {
  FaultOptions options;
  options.enabled = true;
  options.kill_permille = 250;
  uint32_t fired = 0;
  const uint64_t trials = 4000;
  for (uint64_t run = 0; run < trials; ++run) {
    fired += FaultPlan::ForRun(options, 11, run).kill_run ? 1 : 0;
  }
  const double rate = static_cast<double>(fired) / static_cast<double>(trials);
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(FaultPlanTest, RateShapeDoesNotDependOnOtherFaults) {
  // A plan's kill decision must be identical whether or not other fault
  // classes are configured: decisions draw from fixed stream positions.
  FaultOptions kill_only;
  kill_only.enabled = true;
  kill_only.kill_permille = 400;
  FaultOptions kill_and_more = AllFaultsOptions(0);
  kill_and_more.kill_permille = 400;
  kill_and_more.drop_wire_permille = 900;
  for (uint64_t run = 0; run < 256; ++run) {
    EXPECT_EQ(FaultPlan::ForRun(kill_only, 3, run).kill_run,
              FaultPlan::ForRun(kill_and_more, 3, run).kill_run)
        << "run " << run;
  }
}

TEST(ApplyPtFaultsTest, NoFaultsLeaveBuffersUntouched) {
  FaultPlan plan;
  plan.payload_seed = 123;
  std::vector<std::vector<uint8_t>> buffers = {{1, 2, 3}, {4, 5}};
  const auto original = buffers;
  ApplyPtFaults(plan, &buffers);
  EXPECT_EQ(buffers, original);
}

TEST(ApplyPtFaultsTest, TruncationShrinksExactlyOneBuffer) {
  FaultPlan plan;
  plan.truncate_pt = true;
  plan.truncate_keep_permille = 500;
  plan.payload_seed = 7;
  std::vector<std::vector<uint8_t>> buffers = {std::vector<uint8_t>(100, 0xaa),
                                               std::vector<uint8_t>(100, 0xbb)};
  ApplyPtFaults(plan, &buffers);
  const bool first_cut = buffers[0].size() < 100;
  const bool second_cut = buffers[1].size() < 100;
  EXPECT_NE(first_cut, second_cut);  // exactly one stream lost its tail
  EXPECT_EQ(std::min(buffers[0].size(), buffers[1].size()), 50u);
}

TEST(ApplyPtFaultsTest, CorruptionFlipsBitsDeterministically) {
  FaultPlan plan;
  plan.corrupt_pt = true;
  plan.corrupt_bit_flips = 3;
  plan.payload_seed = 99;
  std::vector<std::vector<uint8_t>> a = {std::vector<uint8_t>(64, 0x00)};
  std::vector<std::vector<uint8_t>> b = {std::vector<uint8_t>(64, 0x00)};
  ApplyPtFaults(plan, &a);
  ApplyPtFaults(plan, &b);
  EXPECT_EQ(a, b);              // same plan, same damage
  EXPECT_EQ(a[0].size(), 64u);  // corruption never changes length
  uint32_t bits = 0;
  for (uint8_t byte : a[0]) {
    bits += static_cast<uint32_t>(__builtin_popcount(byte));
  }
  EXPECT_GE(bits, 1u);
  EXPECT_LE(bits, 3u);  // ≤ requested flips (collisions may cancel)
}

TEST(ApplyPtFaultsTest, EmptyBuffersSurvive) {
  FaultPlan plan;
  plan.truncate_pt = true;
  plan.corrupt_pt = true;
  plan.corrupt_bit_flips = 4;
  plan.payload_seed = 1;
  std::vector<std::vector<uint8_t>> empty_set;
  ApplyPtFaults(plan, &empty_set);
  std::vector<std::vector<uint8_t>> all_empty = {{}, {}};
  ApplyPtFaults(plan, &all_empty);
  EXPECT_TRUE(all_empty[0].empty());
  EXPECT_TRUE(all_empty[1].empty());
}

TEST(DeliveredChunkOrderTest, HealthyTransportIsIdentity) {
  FaultPlan plan;
  plan.payload_seed = 17;
  const std::vector<uint32_t> order = DeliveredChunkOrder(plan, 5);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(DeliveredChunkOrderTest, DropLosesExactlyOneChunk) {
  FaultPlan plan;
  plan.drop_wire = true;
  plan.payload_seed = 23;
  const std::vector<uint32_t> order = DeliveredChunkOrder(plan, 8);
  EXPECT_EQ(order.size(), 7u);
  const std::set<uint32_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 7u);  // no duplicates: one index is simply gone
}

TEST(DeliveredChunkOrderTest, ReorderIsAPermutation) {
  FaultPlan plan;
  plan.reorder_wire = true;
  plan.payload_seed = 31;
  std::vector<uint32_t> order = DeliveredChunkOrder(plan, 16);
  ASSERT_EQ(order.size(), 16u);
  std::vector<uint32_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(DeliveredChunkOrderTest, ZeroChunksStayEmpty) {
  FaultPlan plan;
  plan.drop_wire = true;
  plan.reorder_wire = true;
  plan.payload_seed = 47;
  EXPECT_TRUE(DeliveredChunkOrder(plan, 0).empty());
}

}  // namespace
}  // namespace gist
