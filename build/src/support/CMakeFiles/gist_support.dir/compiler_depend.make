# Empty compiler generated dependencies file for gist_support.
# This may be replaced when dependencies are built.
