
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/apache1.cc" "src/apps/CMakeFiles/gist_apps.dir/apache1.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/apache1.cc.o.d"
  "/root/repo/src/apps/apache2.cc" "src/apps/CMakeFiles/gist_apps.dir/apache2.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/apache2.cc.o.d"
  "/root/repo/src/apps/apache3.cc" "src/apps/CMakeFiles/gist_apps.dir/apache3.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/apache3.cc.o.d"
  "/root/repo/src/apps/apache4.cc" "src/apps/CMakeFiles/gist_apps.dir/apache4.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/apache4.cc.o.d"
  "/root/repo/src/apps/app_util.cc" "src/apps/CMakeFiles/gist_apps.dir/app_util.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/app_util.cc.o.d"
  "/root/repo/src/apps/cppcheck1.cc" "src/apps/CMakeFiles/gist_apps.dir/cppcheck1.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/cppcheck1.cc.o.d"
  "/root/repo/src/apps/cppcheck2.cc" "src/apps/CMakeFiles/gist_apps.dir/cppcheck2.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/cppcheck2.cc.o.d"
  "/root/repo/src/apps/curl.cc" "src/apps/CMakeFiles/gist_apps.dir/curl.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/curl.cc.o.d"
  "/root/repo/src/apps/memcached.cc" "src/apps/CMakeFiles/gist_apps.dir/memcached.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/memcached.cc.o.d"
  "/root/repo/src/apps/pbzip2.cc" "src/apps/CMakeFiles/gist_apps.dir/pbzip2.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/pbzip2.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/gist_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/sqlite.cc" "src/apps/CMakeFiles/gist_apps.dir/sqlite.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/sqlite.cc.o.d"
  "/root/repo/src/apps/transmission.cc" "src/apps/CMakeFiles/gist_apps.dir/transmission.cc.o" "gcc" "src/apps/CMakeFiles/gist_apps.dir/transmission.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/coop/CMakeFiles/gist_coop.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gist_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/gist_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/gist_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/gist_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/gist_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gist_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gist_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
