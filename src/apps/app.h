// Bug-reproduction apps: MiniIR models of the 11 real-world failures the
// paper evaluates (Table 1). Each app reproduces the *structure* of its bug —
// the same failure class, the same root-cause-to-failure pattern, the same
// thread/data-flow shape — so that Gist's behaviour on it (slice shape,
// refinement, predictors, recurrence counts) mirrors the paper's.
//
// Every app supplies:
//   * the MiniIR module, annotated with pseudo C source lines so failure
//     sketches render like the paper's figures;
//   * a workload generator producing the mix of failing and successful
//     production runs;
//   * the hand-written ideal failure sketch (the §5.2 accuracy baseline);
//   * the root-cause statements a developer needs to see to write the fix
//     (the fleet's stopping criterion, playing the developer).

#ifndef GIST_SRC_APPS_APP_H_
#define GIST_SRC_APPS_APP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/accuracy.h"
#include "src/ir/builder.h"
#include "src/support/rng.h"
#include "src/vm/workload.h"

namespace gist {

struct BugInfo {
  std::string name;      // short id, e.g. "apache-3"
  std::string software;  // e.g. "Apache httpd"
  std::string version;   // version the original bug was reported against
  std::string bug_id;    // id in the original bug database
  std::string kind;      // e.g. "Concurrency bug, double free"
  uint64_t original_loc = 0;  // size of the original software (paper Table 1)
};

class BugApp {
 public:
  virtual ~BugApp() = default;

  virtual const BugInfo& info() const = 0;
  virtual const Module& module() const = 0;

  // The workload of production run `run_index`; must consume randomness only
  // from `rng` so fleets are reproducible.
  virtual Workload MakeWorkload(uint64_t run_index, Rng& rng) const = 0;

  // Ground truth for §5.2 accuracy measurements.
  virtual const IdealSketch& ideal_sketch() const = 0;

  // Statements whose presence in the sketch lets a developer fix the bug.
  virtual const std::vector<InstrId>& root_cause_instrs() const = 0;
};

// Common storage; concrete apps populate the fields in their constructor.
class BugAppBase : public BugApp {
 public:
  const BugInfo& info() const override { return info_; }
  const Module& module() const override { return *module_; }
  const IdealSketch& ideal_sketch() const override { return ideal_; }
  const std::vector<InstrId>& root_cause_instrs() const override { return root_cause_; }

 protected:
  BugInfo info_;
  std::unique_ptr<Module> module_ = std::make_unique<Module>();
  IdealSketch ideal_;
  std::vector<InstrId> root_cause_;
};

// Convention: every app reads workload input #2 as a "work scale" that
// multiplies the bulk, bug-unrelated work its main thread performs.
// MakeWorkload() picks small scales for fast fleet simulation; the overhead
// benches (Figs. 11/13) override inputs[kWorkScaleInput] with large values so
// fixed tracing costs amortize as they do on real workloads.
inline constexpr size_t kWorkScaleInput = 2;

// Factory functions, one per reproduced bug.
std::unique_ptr<BugApp> MakePbzip2App();
std::unique_ptr<BugApp> MakeApache1App();
std::unique_ptr<BugApp> MakeApache2App();
std::unique_ptr<BugApp> MakeApache3App();
std::unique_ptr<BugApp> MakeApache4App();
std::unique_ptr<BugApp> MakeCppcheck1App();
std::unique_ptr<BugApp> MakeCppcheck2App();
std::unique_ptr<BugApp> MakeCurlApp();
std::unique_ptr<BugApp> MakeTransmissionApp();
std::unique_ptr<BugApp> MakeSqliteApp();
std::unique_ptr<BugApp> MakeMemcachedApp();

// All 11 apps in Table 1 order.
std::vector<std::unique_ptr<BugApp>> MakeAllApps();
// nullptr when `name` is unknown.
std::unique_ptr<BugApp> MakeAppByName(const std::string& name);

}  // namespace gist

#endif  // GIST_SRC_APPS_APP_H_
