// Cooperative fleet walkthrough: the Apache #21287 double free (paper
// Fig. 8) diagnosed with the full Fleet abstraction — the same harness the
// evaluation benches use. Shows failure matching by stack hash, the
// per-iteration early exit that keeps recurrence counts low, and the
// simulated wall-clock latency accounting of Table 1.
//
// Build & run:   ./build/examples/fleet_debugging

#include <cstdio>

#include "src/apps/app.h"
#include "src/coop/fleet.h"
#include "src/support/str.h"

int main() {
  using namespace gist;

  auto app = MakeAppByName("apache-3");
  std::printf("== Apache httpd bug #21287: double free in mod_mem_cache ==\n");
  std::printf("Simulated cooperative fleet, one bug, many production runs.\n\n");

  FleetOptions options;
  options.fleet_seed = 42;
  options.gist.title = "apache-3 (paper Fig. 8)";

  Fleet fleet(
      app->module(),
      [&app](uint64_t run_index, Rng& rng) { return app->MakeWorkload(run_index, rng); },
      options);

  const std::vector<InstrId>& root_cause = app->root_cause_instrs();
  FleetResult result = fleet.Run([&](const FailureSketch& sketch) {
    for (InstrId id : root_cause) {
      if (!sketch.Contains(id)) {
        return false;
      }
    }
    return true;
  });

  if (!result.first_failure_found) {
    std::fprintf(stderr, "the double free never manifested\n");
    return 1;
  }

  std::printf("Target failure: %s (stack hash %016llx)\n",
              FailureTypeName(result.first_failure.type),
              static_cast<unsigned long long>(result.first_failure.MatchHash()));
  for (const FleetIterationStats& it : result.iterations) {
    std::printf("  AsT iteration %u: sigma=%-3u %2u failing / %3u successful runs%s\n",
                it.iteration, it.sigma, it.failing_runs, it.successful_runs,
                it.root_cause_found ? "  -> root cause found" : "");
  }
  std::printf("\nFailure recurrences consumed: %u\n", result.failure_recurrences);
  std::printf("Simulated time to sketch:     %s\n",
              StrFormat("%dm:%02ds", static_cast<int>(result.sim_seconds) / 60,
                        static_cast<int>(result.sim_seconds) % 60)
                  .c_str());
  std::printf("Mean client overhead:         %.2f%%\n\n", result.avg_overhead_percent);

  if (!result.root_cause_found) {
    std::fprintf(stderr, "sketch incomplete\n");
    return 1;
  }

  RenderOptions render;
  render.ideal = &app->ideal_sketch();
  std::printf("%s\n", RenderFailureSketch(app->module(), result.sketch, render).c_str());
  std::printf(
      "Both handler threads appear as columns executing decrement_refcount();\n"
      "the WWR/RWR pattern on obj->refcnt ([*] boxes) is the atomicity violation\n"
      "the developers fixed by making dec-check-free atomic.\n");
  return 0;
}
