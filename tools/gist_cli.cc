// gist — command-line driver for the failure-sketching library.
//
// Usage:
//   gist run <program.gir> [--seed N] [--inputs a,b,c]
//       Execute a MiniIR program once and report the outcome. Without
//       --inputs, each run draws small random inputs from its seed (so
//       seed sweeps exercise input-dependent bugs too).
//   gist slice <program.gir> [--seed N] [--inputs a,b,c]
//       Find a failing run (sweeping seeds when the given one passes), then
//       print the failure report and the static backward slice.
//   gist trace <program.gir> [--seed N] [--inputs a,b,c]
//       Run under full Intel PT tracing; dump per-core packet streams and
//       the decoded visits.
//   gist diagnose <program.gir> [--runs N] [--inputs a,b,c]
//       Full Gist loop over seeds 1..N as the production fleet; print the
//       failure sketch.
//   gist apps
//       List the bundled bug reproductions.
//   gist diagnose-app <name> [--fleet-seed N] [--jobs N]
//       Run the cooperative fleet on a bundled bug and print its sketch.
//       --jobs picks the worker-thread count (0 = all cores); the result is
//       identical for every value.
//   gist fix-app <name> [--fleet-seed N] [--jobs N]
//       Diagnose a bundled bug, synthesize a fix from its sketch, and
//       validate the fix against production workloads.
//   gist dump-app <name>
//       Print a bundled bug's MiniIR module as parseable text (pipe it to a
//       .gir file to experiment with the generic commands).
//   gist profdiff <baseline.json> <current.json> [--top N] [--max-drift-permille P]
//       Diff two deterministic profile exports (--profile-json); exit 1 when
//       any block's retired count drifts past the threshold. tools/ci.sh
//       runs this as the perf gate against the committed BENCH_profile.json.
//   gist cache [stats.json] [--cache-dir DIR] [--cache-purge]
//       Summarize an artifact-store stats export (--cache-stats-json) as a
//       per-artifact hit-rate table, report what a --cache-dir holds on disk,
//       and optionally purge it.
//   gist status <campaign.json>
//       Render a --campaign-json export (gist.campaign.v1) as the live
//       diagnosis dashboard: per-iteration convergence rows plus the current
//       trend and ETA bucket.
//   gist corpus gen --out DIR [--seed N] [--count N] [--families a,b,c]
//       Generate a seeded failure corpus: MiniIR programs from the seven bug
//       templates, each paired with its gist.manifest.v1 ground truth.
//   gist corpus run [--dir DIR | --seed N --count N] [--jobs N] [--tier T]
//       [--chaos] [--score-json PATH]
//       Run the full diagnosis pipeline over a corpus and grade every sketch
//       against its manifest. With --dir, the corpus is regenerated from the
//       index and the on-disk artifacts are byte-verified first.
//   gist corpus score ... --baseline BENCH_corpus.json [--write-baseline P]
//       Like run, then gate the accuracy metrics against a committed
//       baseline (strict: a missing baseline or metric fails).
//
// Programs are MiniIR text files (see src/ir/parser.h for the grammar).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "src/apps/app.h"
#include "src/apps/app_util.h"
#include "src/cache/artifact_store.h"
#include "src/coop/fleet.h"
#include "src/corpus/corpus.h"
#include "src/corpus/score.h"
#include "src/core/gist.h"
#include "src/ir/parser.h"
#include "src/obs/campaign.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/profiler.h"
#include "src/pt/dump.h"
#include "src/pt/tracer.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/str.h"
#include "src/transform/fix_synthesis.h"

namespace gist {
namespace {

struct CliOptions {
  std::string path;
  uint64_t seed = 1;
  uint64_t runs = 500;
  uint64_t fleet_seed = 1;
  uint64_t jobs = 1;
  std::vector<Word> inputs;
  TelemetryExportOptions exports;  // shared --*-json export surface (app_util.h)
  std::string log_level;     // debug|info|warning|error
  std::string tier;          // fast|ref|super execution tier (DESIGN.md §12)
  std::string cache_dir;          // on-disk artifact-store tier (DESIGN.md §11)
  uint64_t cache_mem_mb = 256;    // in-memory artifact budget
  std::string cache_stats_json;   // write the store's gist.cachestats.v1 export
  bool cache_verify = false;      // byte-verify every serialized cache hit
  bool use_cache = false;         // any cache flag given: build a store
};

int Usage() {
  std::fprintf(stderr,
               "usage: gist <run|slice|trace|diagnose> <program.gir> "
               "[--seed N] [--runs N] [--inputs a,b,c]\n"
               "       gist apps\n"
               "       gist diagnose-app <name> [--fleet-seed N] [--jobs N]\n"
               "       gist fix-app <name> [--fleet-seed N] [--jobs N]\n"
               "       gist dump-app <name>\n"
               "       gist profdiff <baseline.json> <current.json> [--top N] "
               "[--max-drift-permille P]\n"
               "       gist status <campaign.json>\n"
               "       gist cache [stats.json] [--cache-dir DIR] [--cache-purge]\n"
               "       gist corpus gen --out DIR [--seed N] [--count N] [--families a,b,c]\n"
               "       gist corpus run [--dir DIR | --seed N --count N] [--jobs N]\n"
               "           [--tier fast|ref|super] [--chaos] [--fleet-seed N]\n"
               "           [--score-json PATH]\n"
               "       gist corpus score <run flags> --baseline BENCH_corpus.json\n"
               "           [--write-baseline PATH]\n"
               "common flags:\n"
               "  --log-level debug|info|warning|error   stderr verbosity (default info)\n"
               "  --tier fast|ref|super   monitored-run execution tier (default fast;\n"
               "                          super fuses profile-hot blocks, ref is the\n"
               "                          always-dispatch oracle — results are\n"
               "                          byte-identical across tiers)\n"
               "  --metrics-json <path>   write the deterministic metrics snapshot\n"
               "                          (diagnose/diagnose-app/fix-app/corpus run|score)\n"
               "  --trace-json <path>     write the virtual-time span trace in Chrome\n"
               "                          trace-event format (diagnose-app/fix-app/corpus)\n"
               "  --profile-json <path>   write the deterministic hot-path profile\n"
               "                          (gist.profile.v1; diagnose-app/fix-app)\n"
               "  --profile-collapsed <path>  write collapsed flamegraph stacks\n"
               "                          (app;function;block count per line)\n"
               "  --campaign-json <path>  write the sketch-convergence journal\n"
               "                          (gist.campaign.v1; diagnose/diagnose-app/fix-app —\n"
               "                          render it with `gist status`)\n"
               "  --cache-dir <dir>       persist slices and PT decodes across runs in a\n"
               "                          content-addressed on-disk store (warm starts)\n"
               "  --cache-mem-mb <N>      in-memory artifact budget in MiB (default 256)\n"
               "  --cache-stats-json <path>  write the store's hit/miss/eviction stats\n"
               "                          (gist.cachestats.v1; readable by `gist cache`)\n"
               "  --cache-verify          rebuild every serialized cache hit and require\n"
               "                          byte equality (also via GIST_CACHE_VERIFY=1)\n");
  return 2;
}

// Applies --tier to the fleet's GistOptions; false (with a message) on an
// unknown tier name.
bool ApplyTier(const CliOptions& options, FleetOptions* fleet_options) {
  if (options.tier.empty()) {
    return true;
  }
  if (!ParseExecTier(options.tier, &fleet_options->gist.tier)) {
    std::fprintf(stderr, "unknown tier '%s' (expected fast, ref, or super)\n",
                 options.tier.c_str());
    return false;
  }
  return true;
}

// Builds the artifact store requested by the cache flags; null when none was
// given (the library then builds everything fresh — byte-identical results).
std::unique_ptr<ArtifactStore> MakeStore(const CliOptions& options) {
  if (!options.use_cache) {
    return nullptr;
  }
  ArtifactStoreOptions store_options;
  store_options.mem_budget_bytes = options.cache_mem_mb * 1024 * 1024;
  store_options.disk_dir = options.cache_dir;
  store_options.verify = options.cache_verify;
  return std::make_unique<ArtifactStore>(store_options);
}

// Writes the store's stats export when --cache-stats-json was given.
bool ExportCacheStats(const ArtifactStore* store, const CliOptions& options) {
  if (store == nullptr || options.cache_stats_json.empty()) {
    return true;
  }
  return WriteTelemetryFile(options.cache_stats_json, store->StatsJson());
}

bool ParseArgs(int argc, char** argv, int first, CliOptions* options) {
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next_value = [&](uint64_t* out) {
      if (i + 1 >= argc) {
        return false;
      }
      *out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    switch (ParseTelemetryExportFlag(argc, argv, &i, &options->exports)) {
      case TelemetryFlagParse::kConsumed:
        continue;
      case TelemetryFlagParse::kMissingValue:
        return false;
      case TelemetryFlagParse::kNotTelemetry:
        break;
    }
    if (arg == "--seed") {
      if (!next_value(&options->seed)) {
        return false;
      }
    } else if (arg == "--runs") {
      if (!next_value(&options->runs)) {
        return false;
      }
    } else if (arg == "--fleet-seed") {
      if (!next_value(&options->fleet_seed)) {
        return false;
      }
    } else if (arg == "--jobs") {
      if (!next_value(&options->jobs)) {
        return false;
      }
    } else if (arg == "--inputs") {
      if (i + 1 >= argc) {
        return false;
      }
      for (std::string_view piece : SplitNonEmpty(argv[++i], ',')) {
        options->inputs.push_back(std::strtoll(std::string(piece).c_str(), nullptr, 10));
      }
    } else if (arg == "--log-level") {
      if (i + 1 >= argc) {
        return false;
      }
      options->log_level = argv[++i];
    } else if (arg == "--tier") {
      if (i + 1 >= argc) {
        return false;
      }
      options->tier = argv[++i];
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        return false;
      }
      options->cache_dir = argv[++i];
      options->use_cache = true;
    } else if (arg == "--cache-mem-mb") {
      if (!next_value(&options->cache_mem_mb)) {
        return false;
      }
      options->use_cache = true;
    } else if (arg == "--cache-stats-json") {
      if (i + 1 >= argc) {
        return false;
      }
      options->cache_stats_json = argv[++i];
      options->use_cache = true;
    } else if (arg == "--cache-verify") {
      options->cache_verify = true;
      options->use_cache = true;
    } else if (options->path.empty()) {
      options->path = std::string(arg);
    } else {
      return false;
    }
  }
  return !options->path.empty();
}

Result<std::unique_ptr<Module>> LoadProgram(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Error("cannot open " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return ParseModule(text.str());
}

Workload MakeWorkload(const CliOptions& options, uint64_t seed) {
  Workload workload;
  workload.schedule_seed = seed;
  if (!options.inputs.empty()) {
    workload.inputs = options.inputs;
  } else {
    // No --inputs given: each run draws small random inputs from its seed so
    // input-dependent bugs manifest across the sweep.
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    for (int i = 0; i < 4; ++i) {
      workload.inputs.push_back(static_cast<Word>(rng.NextBelow(4)));
    }
  }
  return workload;
}

void PrintOutcome(const RunResult& result) {
  if (result.ok()) {
    std::printf("exit: ok (%llu steps", static_cast<unsigned long long>(result.stats.steps));
    if (!result.outputs.empty()) {
      std::printf("; output:");
      for (Word value : result.outputs) {
        std::printf(" %lld", static_cast<long long>(value));
      }
    }
    std::printf(")\n");
  } else {
    std::printf("exit: FAILURE — %s\n", result.failure.message.c_str());
  }
}

int CmdRun(const CliOptions& options) {
  auto module = LoadProgram(options.path);
  if (!module.ok()) {
    std::fprintf(stderr, "error: %s\n", module.error().message().c_str());
    return 1;
  }
  Vm vm(**module, MakeWorkload(options, options.seed), VmOptions{});
  PrintOutcome(vm.Run());
  return 0;
}

// Sweeps seeds from options.seed until the program fails; false if it never does.
bool FindFailure(const Module& module, const CliOptions& options, FailureReport* report,
                 uint64_t* failing_seed) {
  for (uint64_t seed = options.seed; seed < options.seed + options.runs; ++seed) {
    Vm vm(module, MakeWorkload(options, seed), VmOptions{});
    RunResult result = vm.Run();
    if (!result.ok() && result.failure.failing_instr != kNoInstr) {
      *report = result.failure;
      *failing_seed = seed;
      return true;
    }
  }
  return false;
}

int CmdSlice(const CliOptions& options) {
  auto module = LoadProgram(options.path);
  if (!module.ok()) {
    std::fprintf(stderr, "error: %s\n", module.error().message().c_str());
    return 1;
  }
  FailureReport report;
  uint64_t failing_seed = 0;
  if (!FindFailure(**module, options, &report, &failing_seed)) {
    std::printf("no failure in %llu runs\n", static_cast<unsigned long long>(options.runs));
    return 1;
  }
  std::printf("failure at seed %llu: %s\n", static_cast<unsigned long long>(failing_seed),
              report.message.c_str());

  Ticfg ticfg(**module);
  StaticSlice slice = ComputeBackwardSlice(ticfg, report.failing_instr);
  std::printf("static backward slice (%zu statements, failure first):\n", slice.instrs.size());
  for (InstrId id : slice.instrs) {
    const Instruction& instr = (*module)->instr(id);
    std::printf("  [%4u] %-18s %s\n", id, instr.loc.function.c_str(),
                instr.loc.text.empty() ? InstructionToString(instr).c_str()
                                       : instr.loc.text.c_str());
  }

  // The instrumentation Gist would ship for the initial AsT window.
  GistServer server(**module);
  server.ReportFailure(report);
  const InstrumentationPlan& plan = server.plan();
  std::printf("\ninstrumentation plan for the initial window (sigma=%u):\n", server.sigma());
  std::printf("  PT start blocks:");
  for (const auto& [function, block] : plan.pt_start_blocks) {
    std::printf(" %s:^%s", (*module)->function(function).name().c_str(),
                (*module)->function(function).block(block).label().c_str());
  }
  std::printf("\n  PT stop after:");
  for (InstrId id : plan.pt_stop_instrs) {
    std::printf(" [%u]", id);
  }
  std::printf("\n  watched accesses:");
  for (InstrId id : plan.watch_instrs) {
    std::printf(" [%u]", id);
  }
  std::printf("\n  static watch addresses: %zu; dynamic arm sites: %zu\n",
              plan.static_watch_addrs.size(), plan.arm_after.size() + plan.arm_before.size());
  return 0;
}

int CmdTrace(const CliOptions& options) {
  auto module = LoadProgram(options.path);
  if (!module.ok()) {
    std::fprintf(stderr, "error: %s\n", module.error().message().c_str());
    return 1;
  }
  PtTracer tracer(4, kDefaultPtBufferBytes, /*always_on=*/true);
  VmOptions vm_options;
  vm_options.observers = {&tracer};
  Vm vm(**module, MakeWorkload(options, options.seed), vm_options);
  PrintOutcome(vm.Run());
  tracer.FlushAllPending();

  for (CoreId core = 0; core < tracer.num_cores(); ++core) {
    const auto& bytes = tracer.buffer(core).bytes();
    if (bytes.empty()) {
      continue;
    }
    std::printf("\n=== core %u: %zu packet bytes ===\n", core, bytes.size());
    std::printf("%s", DumpPtStream(**module, bytes).c_str());
    Result<DecodedCoreTrace> decoded = DecodePtStream(**module, core, bytes);
    if (decoded.ok()) {
      std::printf("%s", DumpDecodedTrace(**module, *decoded).c_str());
    } else {
      std::printf("decode error: %s\n", decoded.error().message().c_str());
    }
  }
  return 0;
}

int CmdDiagnose(const CliOptions& options) {
  auto module = LoadProgram(options.path);
  if (!module.ok()) {
    std::fprintf(stderr, "error: %s\n", module.error().message().c_str());
    return 1;
  }
  FailureReport report;
  uint64_t failing_seed = 0;
  if (!FindFailure(**module, options, &report, &failing_seed)) {
    std::printf("no failure in %llu runs\n", static_cast<unsigned long long>(options.runs));
    return 1;
  }

  std::unique_ptr<ArtifactStore> store = MakeStore(options);
  GistOptions gist_options;
  gist_options.title = options.path;
  gist_options.store = store.get();
  GistServer server(**module, gist_options);
  server.ReportFailure(report);
  CampaignTracker campaign(options.path);

  // Run the production fleet until the window stops growing, then print.
  // Every monitored run gets a fresh run identity: the same seed re-executes
  // under each AsT window, and the server's run-identity dedup must see those
  // as distinct runs, not duplicate uploads.
  uint64_t next_run_id = 1;
  for (;;) {
    uint32_t failing = 0;
    uint32_t successful = 0;
    uint32_t quarantined = 0;
    for (uint64_t seed = options.seed; seed < options.seed + options.runs; ++seed) {
      MonitoredRun run = RunMonitored(**module, server.plan(), MakeWorkload(options, seed),
                                      gist_options, next_run_id++);
      campaign.AdvanceClock(run.result.stats.steps);
      const bool run_failed = run.trace.failed;
      switch (server.AddTrace(std::move(run.trace))) {
        case GistServer::TraceIngest::kAccepted:
          ++(run_failed ? failing : successful);
          break;
        case GistServer::TraceIngest::kQuarantined:
          ++quarantined;
          break;
        case GistServer::TraceIngest::kRejectedForeign:
          break;
      }
    }
    if (options.exports.wants_campaign()) {
      const GistCampaignState state = server.CampaignState();
      CampaignIterationSample sample;
      sample.iteration = state.iteration;
      sample.sigma = state.sigma;
      sample.virtual_end = campaign.now();
      sample.failing_runs = failing;
      sample.successful_runs = successful;
      sample.quarantined_runs = quarantined;
      sample.recurrences = state.recurrences;
      sample.watch_instrs = static_cast<uint32_t>(server.plan().watch_instrs.size());
      sample.watchpoint_slots = gist_options.watchpoint_slots;
      sample.slice_statements = state.slice_statements;
      sample.window_statements = state.window_statements;
      sample.slice_exhausted = state.slice_exhausted;
      if (Result<FailureSketch> iteration_sketch = server.BuildSketch(); iteration_sketch.ok()) {
        for (const SketchStatement& statement : iteration_sketch->statements) {
          sample.sketch_statements.push_back(statement.instr);
        }
      }
      const std::vector<ScoredPredictor>& ranked = server.behavior().stats().Ranked();
      const size_t top = std::min<size_t>(ranked.size(), CampaignTracker::kRankWindow);
      for (size_t r = 0; r < top; ++r) {
        sample.top_predictors.push_back(PredictorToString(ranked[r].predictor, **module));
      }
      campaign.RecordIteration(std::move(sample));
    }
    if (server.ExhaustedSlice()) {
      break;
    }
    server.AdvanceAst();
  }

  Result<FailureSketch> sketch = server.BuildSketch();
  if (!sketch.ok()) {
    std::fprintf(stderr, "no sketch: %s\n", sketch.error().message().c_str());
    return 1;
  }
  std::printf("%s", RenderFailureSketch(**module, *sketch).c_str());
  // `diagnose` drives the server directly (no fleet, no flight recorder), so
  // --metrics-json means the server's own registry here.
  if (!options.exports.metrics_json.empty() &&
      !WriteTelemetryFile(options.exports.metrics_json, server.metrics().ToJson())) {
    return 1;
  }
  TelemetryExportOptions rest = options.exports;
  rest.metrics_json.clear();
  if (!ExportTelemetry(rest, nullptr, nullptr, &campaign)) {
    return 1;
  }
  if (!ExportCacheStats(store.get(), options)) {
    return 1;
  }
  return 0;
}

int CmdApps() {
  for (const auto& app : MakeAllApps()) {
    const BugInfo& info = app->info();
    std::printf("%-14s %s %s, bug %s — %s\n", info.name.c_str(), info.software.c_str(),
                info.version.c_str(), info.bug_id.c_str(), info.kind.c_str());
  }
  return 0;
}

int CmdDiagnoseApp(const CliOptions& options) {
  auto app = MakeAppByName(options.path);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s' (try `gist apps`)\n", options.path.c_str());
    return 1;
  }
  FlightRecorder recorder;
  HotPathProfiler profiler;
  CampaignTracker campaign(app->info().name);
  std::unique_ptr<ArtifactStore> store = MakeStore(options);
  FleetOptions fleet_options;
  fleet_options.fleet_seed = options.fleet_seed;
  fleet_options.jobs = static_cast<uint32_t>(options.jobs);
  fleet_options.gist.title = app->info().name;
  fleet_options.gist.store = store.get();
  fleet_options.recorder = &recorder;
  if (!ApplyTier(options, &fleet_options)) {
    return 2;
  }
  if (options.exports.wants_profiler()) {
    fleet_options.profiler = &profiler;
  }
  if (options.exports.wants_campaign()) {
    fleet_options.campaign = &campaign;
  }
  Fleet fleet(app->module(),
              [&](uint64_t ri, Rng& rng) { return app->MakeWorkload(ri, rng); }, fleet_options);
  const std::vector<InstrId>& root_cause = app->root_cause_instrs();
  FleetResult result = fleet.Run([&](const FailureSketch& sketch) {
    for (InstrId id : root_cause) {
      if (!sketch.Contains(id)) {
        return false;
      }
    }
    return true;
  });
  if (!ExportTelemetry(options.exports, &recorder, &profiler, &campaign) ||
      !ExportCacheStats(store.get(), options)) {
    return 1;
  }
  if (!result.first_failure_found) {
    std::printf("the bug never manifested\n");
    return 1;
  }
  std::printf("%u failure recurrences, final sigma %u, root cause %s\n\n",
              result.failure_recurrences, result.sigma_final,
              result.root_cause_found ? "FOUND" : "not isolated");
  RenderOptions render;
  render.ideal = &app->ideal_sketch();
  std::printf("%s", RenderFailureSketch(app->module(), result.sketch, render).c_str());
  return result.root_cause_found ? 0 : 1;
}

int CmdDumpApp(const CliOptions& options) {
  auto app = MakeAppByName(options.path);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s' (try `gist apps`)\n", options.path.c_str());
    return 1;
  }
  std::printf("; %s — %s %s, bug %s (%s)\n", app->info().name.c_str(),
              app->info().software.c_str(), app->info().version.c_str(),
              app->info().bug_id.c_str(), app->info().kind.c_str());
  std::printf("%s", app->module().ToString().c_str());
  return 0;
}

int CmdFixApp(const CliOptions& options) {
  auto app = MakeAppByName(options.path);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s' (try `gist apps`)\n", options.path.c_str());
    return 1;
  }
  FlightRecorder recorder;
  HotPathProfiler profiler;
  CampaignTracker campaign(app->info().name);
  std::unique_ptr<ArtifactStore> store = MakeStore(options);
  FleetOptions fleet_options;
  fleet_options.fleet_seed = options.fleet_seed;
  fleet_options.jobs = static_cast<uint32_t>(options.jobs);
  fleet_options.gist.title = app->info().name;
  fleet_options.gist.store = store.get();
  fleet_options.recorder = &recorder;
  if (!ApplyTier(options, &fleet_options)) {
    return 2;
  }
  if (options.exports.wants_profiler()) {
    fleet_options.profiler = &profiler;
  }
  if (options.exports.wants_campaign()) {
    fleet_options.campaign = &campaign;
  }
  Fleet fleet(app->module(),
              [&](uint64_t ri, Rng& rng) { return app->MakeWorkload(ri, rng); }, fleet_options);
  const std::vector<InstrId>& root_cause = app->root_cause_instrs();
  FleetResult result = fleet.Run([&](const FailureSketch& sketch) {
    for (InstrId id : root_cause) {
      if (!sketch.Contains(id)) {
        return false;
      }
    }
    return true;
  });
  if (!ExportTelemetry(options.exports, &recorder, &profiler, &campaign) ||
      !ExportCacheStats(store.get(), options)) {
    return 1;
  }
  if (!result.root_cause_found) {
    std::printf("diagnosis incomplete; cannot synthesize a fix\n");
    return 1;
  }
  Result<SynthesizedFix> fix = SynthesizeFix(app->module(), result.sketch);
  if (!fix.ok()) {
    std::printf("no fix synthesized: %s\n", fix.error().message().c_str());
    return 1;
  }
  std::printf("synthesized: %s\n", fix->description.c_str());

  const uint64_t target_hash = result.first_failure.MatchHash();
  Rng rng(4321);
  int before = 0;
  int after = 0;
  constexpr int kValidationRuns = 400;
  for (int i = 0; i < kValidationRuns; ++i) {
    Workload workload = app->MakeWorkload(static_cast<uint64_t>(i), rng);
    {
      Vm vm(app->module(), workload, VmOptions{});
      RunResult run = vm.Run();
      before += !run.ok() && run.failure.MatchHash() == target_hash;
    }
    {
      Vm vm(*fix->module, workload, VmOptions{});
      RunResult run = vm.Run();
      after += !run.ok() && run.failure.MatchHash() == target_hash;
    }
  }
  std::printf("target-failure recurrences across %d workloads: %d before fix, %d after fix\n",
              kValidationRuns, before, after);
  return after == 0 && before > 0 ? 0 : 1;
}

// `gist profdiff baseline.json current.json [--top N] [--max-drift-permille P]`
// — the CI perf gate. Exit 0: within thresholds; 1: drift or parse failure;
// 2: usage error.
int CmdProfDiff(int argc, char** argv) {
  std::vector<std::string> paths;
  ProfileDiffOptions diff_options;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--top") {
      if (i + 1 >= argc) {
        return Usage();
      }
      diff_options.top_n = static_cast<uint32_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--max-drift-permille") {
      if (i + 1 >= argc) {
        return Usage();
      }
      diff_options.max_drift_permille = std::strtoull(argv[++i], nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) {
    return Usage();
  }
  std::string contents[2];
  for (int i = 0; i < 2; ++i) {
    std::ifstream file(paths[i], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "error: cannot open %s\n", paths[i].c_str());
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    contents[i] = text.str();
  }
  const ProfileDiffResult diff = DiffProfiles(contents[0], contents[1], diff_options);
  if (!diff.parsed) {
    std::fprintf(stderr, "profdiff: %s\n", diff.error.c_str());
    return 1;
  }
  std::printf("%s", diff.report.c_str());
  std::printf("profdiff: %s\n", diff.ok ? "OK" : "DRIFT");
  return diff.ok ? 0 : 1;
}

// Parses a flat key→number JSON object (the gist.cachestats.v1 shape: one
// scalar per line, no nesting). String-valued entries like "schema" are
// skipped. Returns false when nothing numeric parsed.
bool ParseFlatNumberJson(const std::string& text, std::map<std::string, uint64_t>* out) {
  size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) {
      break;
    }
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    size_t value_pos = text.find(':', key_end);
    if (value_pos == std::string::npos) {
      break;
    }
    ++value_pos;
    while (value_pos < text.size() && std::isspace(static_cast<unsigned char>(text[value_pos]))) {
      ++value_pos;
    }
    if (value_pos < text.size() && text[value_pos] == '"') {
      // String value (e.g. the schema tag): skip past it.
      pos = text.find('"', value_pos + 1);
      if (pos == std::string::npos) {
        break;
      }
      ++pos;
      continue;
    }
    (*out)[key] = std::strtoull(text.c_str() + value_pos, nullptr, 10);
    pos = value_pos;
  }
  return !out->empty();
}

// `gist cache [stats.json] [--cache-dir DIR] [--cache-purge]` — inspect a
// store's stats export and/or its on-disk tier.
int CmdCache(int argc, char** argv) {
  std::string stats_path;
  std::string cache_dir;
  bool purge = false;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        return Usage();
      }
      cache_dir = argv[++i];
    } else if (arg == "--cache-purge") {
      purge = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (stats_path.empty()) {
      stats_path = std::string(arg);
    } else {
      return Usage();
    }
  }
  if (stats_path.empty() && cache_dir.empty()) {
    return Usage();
  }
  if (purge && cache_dir.empty()) {
    std::fprintf(stderr, "error: --cache-purge needs --cache-dir\n");
    return 2;
  }

  if (!stats_path.empty()) {
    std::ifstream file(stats_path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "error: cannot open %s\n", stats_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    std::map<std::string, uint64_t> stats;
    if (!ParseFlatNumberJson(text.str(), &stats)) {
      std::fprintf(stderr, "error: %s has no cache stats\n", stats_path.c_str());
      return 1;
    }
    auto value = [&](const std::string& key) {
      auto it = stats.find(key);
      return it == stats.end() ? uint64_t{0} : it->second;
    };
    std::printf("%-16s %10s %10s %8s %10s %12s\n", "artifact", "hits", "misses", "hit%",
                "evictions", "bytes");
    for (size_t kind = 0; kind < kNumArtifactKinds; ++kind) {
      const std::string name = ArtifactKindName(static_cast<ArtifactKind>(kind));
      const uint64_t hits = value("cache.hits." + name);
      const uint64_t misses = value("cache.misses." + name);
      const uint64_t lookups = hits + misses;
      std::printf("%-16s %10llu %10llu %7.1f%% %10llu %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(hits), static_cast<unsigned long long>(misses),
                  lookups == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / lookups,
                  static_cast<unsigned long long>(value("cache.evictions." + name)),
                  static_cast<unsigned long long>(value("cache.bytes." + name)));
    }
    const uint64_t hits = value("cache.hits");
    const uint64_t lookups = hits + value("cache.misses");
    std::printf("%-16s %10llu %10llu %7.1f%% %10llu %12llu\n", "total",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(value("cache.misses")),
                lookups == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / lookups,
                static_cast<unsigned long long>(value("cache.evictions")),
                static_cast<unsigned long long>(value("cache.bytes")));
  }

  if (!cache_dir.empty()) {
    const auto scan = ArtifactStore::ScanDisk(cache_dir);
    std::printf("\ndisk tier %s:\n", cache_dir.c_str());
    if (scan.empty()) {
      std::printf("  (empty)\n");
    }
    for (const auto& [name, entry] : scan) {
      std::printf("  %-16s %6llu records %12llu bytes %llu corrupt\n", name.c_str(),
                  static_cast<unsigned long long>(entry.records),
                  static_cast<unsigned long long>(entry.bytes),
                  static_cast<unsigned long long>(entry.corrupt));
    }
    if (purge) {
      const uint64_t removed = ArtifactStore::PurgeDisk(cache_dir);
      std::printf("purged %llu files\n", static_cast<unsigned long long>(removed));
    }
  }
  return 0;
}

// --- `gist corpus` ----------------------------------------------------------

struct CorpusCliArgs {
  std::string dir;  // gen: --out; run/score: --dir (optional)
  uint64_t seed = 2015;
  uint64_t count = kNumBugFamilies;
  std::vector<BugFamily> families;
  uint64_t jobs = 1;
  std::string tier;
  bool chaos = false;
  uint64_t fleet_seed = 2015;
  uint64_t runs_per_iteration = 400;
  uint64_t max_iterations = 8;
  std::string score_json;
  std::string baseline;
  std::string write_baseline;
  std::string cache_dir;
  uint64_t cache_mem_mb = 256;
  bool use_cache = false;
  bool render = false;  // print each program's final sketch after the table
  TelemetryExportOptions exports;  // --metrics-json / --trace-json for the sweep
};

// Parses everything after `gist corpus <sub>`; false on a malformed flag.
bool ParseCorpusArgs(int argc, char** argv, CorpusCliArgs* args) {
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    switch (ParseTelemetryExportFlag(argc, argv, &i, &args->exports)) {
      case TelemetryFlagParse::kConsumed:
        continue;
      case TelemetryFlagParse::kMissingValue:
        return false;
      case TelemetryFlagParse::kNotTelemetry:
        break;
    }
    auto next_value = [&](uint64_t* out) {
      if (i + 1 >= argc) {
        return false;
      }
      *out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    auto next_string = [&](std::string* out) {
      if (i + 1 >= argc) {
        return false;
      }
      *out = argv[++i];
      return true;
    };
    if (arg == "--out" || arg == "--dir") {
      if (!next_string(&args->dir)) {
        return false;
      }
    } else if (arg == "--seed") {
      if (!next_value(&args->seed)) {
        return false;
      }
    } else if (arg == "--count") {
      if (!next_value(&args->count)) {
        return false;
      }
    } else if (arg == "--families") {
      if (i + 1 >= argc) {
        return false;
      }
      for (std::string_view piece : SplitNonEmpty(argv[++i], ',')) {
        BugFamily family;
        if (!ParseBugFamily(std::string(piece), &family)) {
          std::fprintf(stderr, "unknown bug family '%.*s'\n",
                       static_cast<int>(piece.size()), piece.data());
          return false;
        }
        args->families.push_back(family);
      }
    } else if (arg == "--jobs") {
      if (!next_value(&args->jobs)) {
        return false;
      }
    } else if (arg == "--tier") {
      if (!next_string(&args->tier)) {
        return false;
      }
    } else if (arg == "--chaos") {
      args->chaos = true;
    } else if (arg == "--render") {
      args->render = true;
    } else if (arg == "--fleet-seed") {
      if (!next_value(&args->fleet_seed)) {
        return false;
      }
    } else if (arg == "--runs-per-iteration") {
      if (!next_value(&args->runs_per_iteration)) {
        return false;
      }
    } else if (arg == "--max-iterations") {
      if (!next_value(&args->max_iterations)) {
        return false;
      }
    } else if (arg == "--score-json") {
      if (!next_string(&args->score_json)) {
        return false;
      }
    } else if (arg == "--baseline") {
      if (!next_string(&args->baseline)) {
        return false;
      }
    } else if (arg == "--write-baseline") {
      if (!next_string(&args->write_baseline)) {
        return false;
      }
    } else if (arg == "--cache-dir") {
      if (!next_string(&args->cache_dir)) {
        return false;
      }
      args->use_cache = true;
    } else if (arg == "--cache-mem-mb") {
      if (!next_value(&args->cache_mem_mb)) {
        return false;
      }
      args->use_cache = true;
    } else {
      std::fprintf(stderr, "unknown corpus flag '%.*s'\n", static_cast<int>(arg.size()),
                   arg.data());
      return false;
    }
  }
  return true;
}

int CmdCorpusGen(const CorpusCliArgs& args) {
  if (args.dir.empty()) {
    std::fprintf(stderr, "error: corpus gen needs --out DIR\n");
    return 2;
  }
  CorpusOptions options;
  options.seed = args.seed;
  options.count = static_cast<uint32_t>(args.count);
  options.families = args.families;
  const std::vector<GeneratedProgram> programs = GenerateCorpus(options);
  std::string error;
  if (!WriteCorpusDir(args.dir, programs, options, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  for (const GeneratedProgram& program : programs) {
    std::printf("  %-28s %-20s %5zu instrs\n", program.manifest.name.c_str(),
                BugFamilyName(program.manifest.family),
                static_cast<size_t>(program.module->num_instructions()));
  }
  std::printf("wrote %zu programs (seed %llu) to %s\n", programs.size(),
              static_cast<unsigned long long>(args.seed), args.dir.c_str());
  return 0;
}

// Reads `path` into `*bytes`; false when unreadable.
bool ReadFileBytes(const std::string& path, std::string* bytes) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return false;
  }
  std::ostringstream text;
  text << file.rdbuf();
  *bytes = text.str();
  return true;
}

// Regenerates the corpus `dir` holds and byte-verifies every on-disk
// artifact against the regeneration. Generation is seed-pure, so any
// mismatch means the directory was edited or corrupted — re-parsing the
// `.gir` instead could silently renumber the manifest's instruction ids.
bool VerifyCorpusDir(const std::string& dir, const std::vector<GeneratedProgram>& programs) {
  bool ok = true;
  for (const GeneratedProgram& program : programs) {
    const std::string stem = dir + "/" + program.manifest.name;
    std::string disk;
    if (!ReadFileBytes(stem + ".gir", &disk) || disk != program.module->ToString()) {
      std::fprintf(stderr, "error: %s.gir does not match its seed's regeneration\n",
                   stem.c_str());
      ok = false;
    }
    if (!ReadFileBytes(stem + ".manifest.json", &disk) || disk != program.manifest.ToJson()) {
      std::fprintf(stderr, "error: %s.manifest.json does not match its seed's regeneration\n",
                   stem.c_str());
      ok = false;
    }
  }
  return ok;
}

void PrintCorpusScore(const CorpusScore& score) {
  std::printf("%-28s %-20s %4s %5s %4s %8s %8s %8s %6s %6s\n", "program", "family", "fail",
              "match", "root", "relev", "order", "overall", "edges", "recur");
  for (const ProgramScore& p : score.programs) {
    std::printf("%-28s %-20s %4s %5s %4s %8.2f %8.2f %8.2f %6.2f %6u\n", p.name.c_str(),
                BugFamilyName(p.family), p.manifested ? "Y" : "-", p.failure_match ? "Y" : "-",
                p.root_cause_found ? "Y" : "-", p.accuracy.relevance, p.accuracy.ordering,
                p.accuracy.overall, p.edge_recall, p.recurrences);
  }
  const auto metrics = score.BaselineMetrics();
  auto metric = [&](const char* key) {
    const auto it = metrics.find(key);
    return it == metrics.end() ? 0.0 : it->second;
  };
  std::printf(
      "\n%zu programs: %.1f%% manifested, %.1f%% failure match, %.1f%% root cause, "
      "mean overall %.2f\n",
      score.programs.size(), 100.0 * metric("corpus_manifested_rate"),
      100.0 * metric("corpus_failure_match_rate"), 100.0 * metric("corpus_root_cause_rate"),
      metric("corpus_mean_overall"));
  std::printf("accuracy buckets: >=90: %u   75-90: %u   50-75: %u   <50: %u\n", score.bucket_a90,
              score.bucket_a75, score.bucket_a50, score.bucket_low);
}

// `run` prints the table; `score` (gate=true) additionally enforces the
// committed baseline — strictly, so a missing baseline file is a failure.
int CmdCorpusRun(const CorpusCliArgs& args, bool gate) {
  CorpusOptions options;
  options.seed = args.seed;
  options.count = static_cast<uint32_t>(args.count);
  options.families = args.families;
  if (!args.dir.empty()) {
    std::string error;
    if (!LoadCorpusIndex(args.dir, &options, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }
  const std::vector<GeneratedProgram> programs = GenerateCorpus(options);
  if (!args.dir.empty() && !VerifyCorpusDir(args.dir, programs)) {
    return 1;
  }

  CorpusScoreOptions score_options;
  score_options.jobs = static_cast<uint32_t>(args.jobs);
  if (!args.tier.empty() && !ParseExecTier(args.tier, &score_options.tier)) {
    std::fprintf(stderr, "unknown tier '%s' (expected fast, ref, or super)\n",
                 args.tier.c_str());
    return 2;
  }
  if (args.chaos) {
    score_options.faults = CorpusChaosFaults();
  }
  score_options.fleet_seed = args.fleet_seed;
  score_options.runs_per_iteration = static_cast<uint32_t>(args.runs_per_iteration);
  score_options.max_iterations = static_cast<uint32_t>(args.max_iterations);
  FlightRecorder recorder;
  if (args.exports.wants_recorder()) {
    score_options.recorder = &recorder;
  }
  std::unique_ptr<ArtifactStore> store;
  if (args.use_cache) {
    ArtifactStoreOptions store_options;
    store_options.mem_budget_bytes = args.cache_mem_mb * 1024 * 1024;
    store_options.disk_dir = args.cache_dir;
    store = std::make_unique<ArtifactStore>(store_options);
    score_options.store = store.get();
  }

  const CorpusScore score = ScoreCorpus(programs, score_options);
  PrintCorpusScore(score);
  if (args.render) {
    for (size_t i = 0; i < score.programs.size(); ++i) {
      const ProgramScore& p = score.programs[i];
      const GeneratedProgram& program = programs[i];
      std::printf("\n=== %s ===\n", p.name.c_str());
      if (!p.manifested) {
        std::printf("(the failure never manifested)\n");
        continue;
      }
      for (InstrId id : program.manifest.root_cause) {
        if (!p.sketch.Contains(id)) {
          std::printf("missing root-cause statement [%u] %s\n", id,
                      InstructionToString(program.module->instr(id)).c_str());
        }
      }
      const std::vector<InstrId> sketch_ids = p.sketch.InstrSet();
      const auto& ideal_ids = program.manifest.ideal.instrs;
      auto in = [](const std::vector<InstrId>& set, InstrId id) {
        return std::find(set.begin(), set.end(), id) != set.end();
      };
      for (InstrId id : sketch_ids) {
        if (!in(ideal_ids, id)) {
          std::printf("sketch-only [%u] %s\n", id,
                      InstructionToString(program.module->instr(id)).c_str());
        }
      }
      for (InstrId id : ideal_ids) {
        if (!in(sketch_ids, id)) {
          std::printf("ideal-only  [%u] %s\n", id,
                      InstructionToString(program.module->instr(id)).c_str());
        }
      }
      RenderOptions render;
      render.ideal = &program.manifest.ideal;
      std::printf("%s", RenderFailureSketch(*program.module, p.sketch, render).c_str());
    }
  }
  if (!args.score_json.empty() && !WriteTelemetryFile(args.score_json, score.ReportJson())) {
    return 1;
  }
  if (!ExportTelemetry(args.exports, score_options.recorder, nullptr, nullptr)) {
    return 1;
  }
  if (!args.write_baseline.empty() &&
      !WriteFlatJson(args.write_baseline, score.BaselineMetrics())) {
    std::fprintf(stderr, "error: cannot write %s\n", args.write_baseline.c_str());
    return 1;
  }
  if (!gate) {
    return 0;
  }
  if (args.baseline.empty()) {
    std::fprintf(stderr, "error: corpus score needs --baseline (or use `corpus run`)\n");
    return 2;
  }
  const std::map<std::string, double> baseline = ReadFlatJson(args.baseline);
  if (baseline.empty()) {
    std::fprintf(stderr, "corpus gate: baseline %s is missing or empty — commit one with "
                 "--write-baseline\n",
                 args.baseline.c_str());
    return 1;
  }
  const BaselineCheck check = CheckAgainstBaseline(score, baseline);
  for (const std::string& violation : check.violations) {
    std::fprintf(stderr, "corpus gate: %s\n", violation.c_str());
  }
  std::printf("corpus gate: %s (%zu metrics vs %s)\n", check.ok ? "OK" : "REGRESSED",
              score.BaselineMetrics().size(), args.baseline.c_str());
  return check.ok ? 0 : 1;
}

int CmdCorpus(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string_view sub = argv[2];
  CorpusCliArgs args;
  if (!ParseCorpusArgs(argc, argv, &args)) {
    return Usage();
  }
  if (sub == "gen") {
    return CmdCorpusGen(args);
  }
  if (sub == "run") {
    return CmdCorpusRun(args, /*gate=*/false);
  }
  if (sub == "score") {
    return CmdCorpusRun(args, /*gate=*/true);
  }
  return Usage();
}

// Extracts `"key": "value"` from text[from, limit); false when absent.
// Honors the journal's own escaping (predictor text quotes source lines), so
// \" and \\ are unescaped and do not terminate the value.
bool FindStringField(const std::string& text, const std::string& key, size_t from, size_t limit,
                     std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t pos = text.find(needle, from);
  if (pos == std::string::npos || pos >= limit) {
    return false;
  }
  std::string value;
  for (size_t i = pos + needle.size(); i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      const char next = text[++i];
      value += next == 'n' ? '\n' : next == 't' ? '\t' : next;
    } else if (c == '"') {
      *out = std::move(value);
      return true;
    } else {
      value += c;
    }
  }
  return false;
}

// `gist status <campaign.json>` — render a gist.campaign.v1 journal as the
// live diagnosis dashboard: one convergence row per AsT iteration plus the
// trend / ETA summary the status block carries.
int CmdStatus(int argc, char** argv) {
  std::string path;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.empty() && arg[0] == '-') {
      return Usage();
    }
    if (!path.empty()) {
      return Usage();
    }
    path = std::string(arg);
  }
  if (path.empty()) {
    return Usage();
  }
  std::string text;
  if (!ReadFileBytes(path, &text)) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  if (text.find("\"schema\": \"gist.campaign.v1\"") == std::string::npos) {
    std::fprintf(stderr, "error: %s is not a gist.campaign.v1 journal\n", path.c_str());
    return 1;
  }
  std::string title = "failure";
  FindStringField(text, "title", 0, text.size(), &title);
  std::printf("campaign: %s\n", title.c_str());

  const size_t status_pos = text.find("\"status\": {");
  const size_t array_pos = text.find("\"iterations\": [");
  const size_t array_end = status_pos == std::string::npos ? text.size() : status_pos;
  std::printf("%5s %6s %6s %5s %5s %5s %5s %5s %6s %6s %6s  %s\n", "iter", "sigma", "runs",
              "fail", "succ", "lost", "quar", "dist", "churn", "cover", "surv",
              "top predictor");
  size_t pos = array_pos == std::string::npos ? array_end : array_pos;
  while (pos < array_end) {
    const size_t open = text.find('{', pos);
    if (open == std::string::npos || open >= array_end) {
      break;
    }
    const size_t close = text.find('}', open);
    if (close == std::string::npos) {
      break;
    }
    const std::string object = text.substr(open, close - open + 1);
    std::map<std::string, uint64_t> row;
    ParseFlatNumberJson(object, &row);
    std::string top_predictor;
    FindStringField(object, "top_predictor", 0, object.size(), &top_predictor);
    auto value = [&](const char* key) {
      const auto it = row.find(key);
      return it == row.end() ? uint64_t{0} : it->second;
    };
    std::printf("%5llu %6llu %6llu %5llu %5llu %5llu %5llu %5llu %6llu %5llu‰ %5llu‰  %s\n",
                static_cast<unsigned long long>(value("iteration")),
                static_cast<unsigned long long>(value("sigma")),
                static_cast<unsigned long long>(value("runs_consumed")),
                static_cast<unsigned long long>(value("failing")),
                static_cast<unsigned long long>(value("successful")),
                static_cast<unsigned long long>(value("lost")),
                static_cast<unsigned long long>(value("quarantined")),
                static_cast<unsigned long long>(value("sketch_edit_distance")),
                static_cast<unsigned long long>(value("predictor_rank_churn")),
                static_cast<unsigned long long>(value("watch_coverage_permille")),
                static_cast<unsigned long long>(value("survivor_permille")),
                top_predictor.c_str());
    pos = close + 1;
  }

  if (status_pos == std::string::npos) {
    std::fprintf(stderr, "error: %s has no status block\n", path.c_str());
    return 1;
  }
  const size_t status_close = text.find('}', status_pos);
  const std::string status =
      text.substr(status_pos, status_close == std::string::npos
                                  ? std::string::npos
                                  : status_close - status_pos + 1);
  std::map<std::string, uint64_t> fields;
  ParseFlatNumberJson(status, &fields);
  std::string trend = "unknown";
  std::string eta = "unknown";
  FindStringField(status, "trend", 0, status.size(), &trend);
  FindStringField(status, "eta_bucket", 0, status.size(), &eta);
  auto value = [&](const char* key) {
    const auto it = fields.find(key);
    return it == fields.end() ? uint64_t{0} : it->second;
  };
  std::printf("\nstatus: %s (eta: %s)\n", trend.c_str(), eta.c_str());
  std::printf("  %llu iterations, sigma %llu, %llu runs consumed, %llu recurrences, "
              "root cause %s\n",
              static_cast<unsigned long long>(value("iterations")),
              static_cast<unsigned long long>(value("sigma")),
              static_cast<unsigned long long>(value("runs_consumed")),
              static_cast<unsigned long long>(value("recurrences")),
              value("root_cause_found") != 0 ? "FOUND" : "not isolated");
  std::printf("  window %llu of %llu slice statements (slice %s), virtual clock %llu\n",
              static_cast<unsigned long long>(value("window_statements")),
              static_cast<unsigned long long>(value("slice_statements")),
              value("slice_exhausted") != 0 ? "exhausted" : "growing",
              static_cast<unsigned long long>(value("virtual_now")));
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string_view command = argv[1];
  if (command == "apps") {
    return CmdApps();
  }
  if (command == "status") {
    return CmdStatus(argc, argv);
  }
  if (command == "profdiff") {
    return CmdProfDiff(argc, argv);
  }
  if (command == "cache") {
    return CmdCache(argc, argv);
  }
  if (command == "corpus") {
    return CmdCorpus(argc, argv);
  }
  CliOptions options;
  if (!ParseArgs(argc, argv, 2, &options)) {
    return Usage();
  }
  if (!options.log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(options.log_level, &level)) {
      std::fprintf(stderr, "error: bad --log-level '%s' (want debug|info|warning|error)\n",
                   options.log_level.c_str());
      return 2;
    }
    SetLogLevel(level);
  }
  if (command == "run") {
    return CmdRun(options);
  }
  if (command == "slice") {
    return CmdSlice(options);
  }
  if (command == "trace") {
    return CmdTrace(options);
  }
  if (command == "diagnose") {
    return CmdDiagnose(options);
  }
  if (command == "diagnose-app") {
    return CmdDiagnoseApp(options);
  }
  if (command == "fix-app") {
    return CmdFixApp(options);
  }
  if (command == "dump-app") {
    return CmdDumpApp(options);
  }
  return Usage();
}

}  // namespace
}  // namespace gist

int main(int argc, char** argv) { return gist::Main(argc, argv); }
