// The seven parameterized bug templates behind the corpus generator
// (DESIGN.md §13). Internal to src/corpus; callers go through
// GenerateProgram.

#ifndef GIST_SRC_CORPUS_TEMPLATES_H_
#define GIST_SRC_CORPUS_TEMPLATES_H_

#include "src/corpus/manifest.h"
#include "src/support/rng.h"

namespace gist {

// Emits `family`'s program into `module` and fills every ground-truth field
// of the returned manifest except `name`, `program_seed`, and `params`
// (stamped by GenerateProgram). `params` shapes the emission — extra benign
// threads, heap sizes / propagation depth, benign branch nesting, noise
// volume; `rng` may only be consumed for shape choices, never for anything
// the manifest doesn't capture, so (family, params, rng state) fully
// determines the program bytes.
CorpusManifest BuildTemplate(BugFamily family, const TemplateParams& params,
                             Module& module, Rng& rng);

}  // namespace gist

#endif  // GIST_SRC_CORPUS_TEMPLATES_H_
