#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>

#include "src/support/str.h"

namespace gist {
namespace {

uint32_t BucketFor(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  return std::min<uint32_t>(static_cast<uint32_t>(std::bit_width(value)), Histogram::kBuckets - 1);
}

bool HasPrefix(std::string_view name, std::string_view prefix) {
  return !prefix.empty() && name.substr(0, prefix.size()) == prefix;
}

}  // namespace

void Histogram::Observe(uint64_t value) {
  ++buckets[BucketFor(value)];
  ++count;
  sum += value;
}

void Histogram::Merge(const Histogram& other) {
  for (uint32_t i = 0; i < kBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

void MetricsRegistry::Add(std::string_view name, uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::Set(std::string_view name, int64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::SetMax(std::string_view name, int64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else if (value > it->second) {
    it->second = value;
  }
}

void MetricsRegistry::Observe(std::string_view name, uint64_t value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.Observe(value);
}

void MetricsRegistry::MergeBuckets(std::string_view name, const uint32_t* buckets,
                                   size_t bucket_count, uint64_t count, uint64_t sum) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  Histogram& hist = it->second;
  for (size_t i = 0; i < bucket_count; ++i) {
    hist.buckets[std::min<size_t>(i, Histogram::kBuckets - 1)] += buckets[i];
  }
  hist.count += count;
  hist.sum += sum;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    Add(name, value);
  }
  for (const auto& [name, value] : other.gauges_) {
    Set(name, value);
  }
  for (const auto& [name, hist] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, hist);
    } else {
      it->second.Merge(hist);
    }
  }
}

uint64_t* MetricsRegistry::CounterSlot(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return &it->second;
}

int64_t* MetricsRegistry::GaugeSlot(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), 0).first;
  }
  return &it->second;
}

Histogram* MetricsRegistry::HistogramSlot(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return &it->second;
}

uint64_t MetricsRegistry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t MetricsRegistry::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::ToJson(std::string_view exclude_prefix) const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (HasPrefix(name, exclude_prefix)) {
      continue;
    }
    out += StrFormat("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (HasPrefix(name, exclude_prefix)) {
      continue;
    }
    out += StrFormat("%s\n    \"%s\": %lld", first ? "" : ",", name.c_str(),
                     static_cast<long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (HasPrefix(name, exclude_prefix)) {
      continue;
    }
    out += StrFormat("%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"buckets\": [",
                     first ? "" : ",", name.c_str(), static_cast<unsigned long long>(hist.count),
                     static_cast<unsigned long long>(hist.sum));
    // Trailing zero buckets are trimmed so snapshots stay readable; leading
    // and interior zeros are kept so indices still mean bit widths.
    uint32_t last = Histogram::kBuckets;
    while (last > 0 && hist.buckets[last - 1] == 0) {
      --last;
    }
    for (uint32_t i = 0; i < last; ++i) {
      out += StrFormat("%s%llu", i == 0 ? "" : ", ",
                       static_cast<unsigned long long>(hist.buckets[i]));
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace gist
