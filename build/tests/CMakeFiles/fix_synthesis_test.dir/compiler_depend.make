# Empty compiler generated dependencies file for fix_synthesis_test.
# This may be replaced when dependencies are built.
