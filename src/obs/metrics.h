// Deterministic metrics registry (DESIGN.md §9).
//
// Counters, gauges, and fixed-bucket histograms keyed by dotted metric names
// ("pt.decode.packets"). Everything is integer-valued and stored in ordered
// maps, so a snapshot serializes to the same bytes on every platform and for
// every worker count: the fleet records per-run shards on the coordinator
// thread in run-index order (the FleetResult merge discipline), making the
// merged registry a pure function of (module, options, fleet_seed).
//
// There is deliberately no wall-clock, no floating point, and no sampling in
// here — anything non-deterministic lives in FlightRecorder's annotation
// side channel, which never reaches ToJson().

#ifndef GIST_SRC_OBS_METRICS_H_
#define GIST_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace gist {

// Power-of-two bucket histogram: bucket 0 counts zero values, bucket i
// (1 ≤ i < kBuckets-1) counts values v with bit_width(v) == i (i.e.
// 2^(i-1) ≤ v < 2^i), and the last bucket absorbs everything wider. 33
// buckets cover the full range a run can produce (steps per run max out in
// the millions; uploads in the megabytes).
struct Histogram {
  static constexpr uint32_t kBuckets = 33;

  uint64_t buckets[kBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;

  void Observe(uint64_t value);
  void Merge(const Histogram& other);
};

class MetricsRegistry {
 public:
  // Counter: monotone uint64 accumulator.
  void Add(std::string_view name, uint64_t delta = 1);
  // Gauge: last write wins. Merging in run-index order keeps this
  // deterministic — "last" means "latest consumed run", not "latest thread".
  void Set(std::string_view name, int64_t value);
  // Gauge flavor that only ever moves up (peak occupancy style).
  void SetMax(std::string_view name, int64_t value);
  // Histogram observation.
  void Observe(std::string_view name, uint64_t value);
  // Folds a pre-bucketed shard (e.g. RunStats' flush-size array, which uses
  // the same bucket definition) into the named histogram. Buckets past
  // Histogram::kBuckets-1 clamp into the overflow bucket.
  void MergeBuckets(std::string_view name, const uint32_t* buckets, size_t bucket_count,
                    uint64_t count, uint64_t sum);

  // Merges another registry: counters and histograms add; gauges take the
  // other side's value (the caller merges shards in run-index order, so
  // "other" is always the later shard).
  void Merge(const MetricsRegistry& other);

  // Stable-slot accessors: return a pointer to the named metric's storage,
  // creating a zeroed entry when absent (same creation semantics as
  // Add(name, 0) / Set(name, 0) / Observe-never, so a slot whose value stays
  // untouched still serializes). The maps are node-based, so the pointers
  // stay valid for the registry's lifetime — hot publishers (one publish per
  // consumed run on 10^3+ run fleets) resolve each name once and then bump
  // through the slot instead of re-walking the map.
  uint64_t* CounterSlot(std::string_view name);
  int64_t* GaugeSlot(std::string_view name);
  Histogram* HistogramSlot(std::string_view name);

  // Lookups (0 / nullptr when the name was never recorded).
  uint64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  const Histogram* histogram(std::string_view name) const;
  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }

  // Deterministic snapshot: sorted keys, integers only, stable layout.
  // `exclude_prefix` drops every metric whose name starts with it — the
  // determinism tests use it to compare fast-path and reference-dispatch
  // fleets minus the engine-internal ("engine.") batching counters.
  std::string ToJson(std::string_view exclude_prefix = {}) const;

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, int64_t, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace gist

#endif  // GIST_SRC_OBS_METRICS_H_
